package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"vedrfolnir/internal/wire"
)

// journalFormat is the supported journal format version.
const journalFormat = 1

// Journal is a sweep's JSONL checkpoint file: a wire.SweepHeader line
// followed by one wire.SweepRecord line per finished job. While a sweep
// runs, records are appended in completion order (maximum checkpoint
// granularity: a kill loses at most the in-flight jobs); when the sweep
// finishes, Compact rewrites the file in job order, so two completed
// journals of the same sweep are byte-identical no matter how many times
// they were interrupted or how many workers ran them.
type Journal struct {
	path    string
	f       *os.File
	header  wire.SweepHeader
	have    map[string]Result
	failed  map[string]bool
	skipped int
}

// OpenJournal opens or creates the journal at path for the sweep described
// by spec. An existing file must carry the same spec — a journal never
// mixes two different sweeps — and its records become the resume set.
func OpenJournal(path string, spec wire.SweepSpec) (*Journal, error) {
	j := &Journal{
		path:   path,
		header: wire.SweepHeader{Format: journalFormat, Spec: spec},
		have:   map[string]Result{},
		failed: map[string]bool{},
	}
	if _, err := os.Stat(path); err == nil {
		header, results, skipped, err := ReadJournal(path)
		if err != nil {
			return nil, err
		}
		j.skipped = skipped
		if header.Spec != spec {
			return nil, fmt.Errorf("sweep: journal %s belongs to sweep %+v, not %+v",
				path, header.Spec, spec)
		}
		for _, r := range results {
			if r.Err != "" {
				// Failed jobs re-run on resume; remember them only so
				// status can report the capture.
				j.failed[r.Key] = true
				continue
			}
			j.have[r.Key] = r
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	j.f = f
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if st.Size() == 0 {
		if err := j.appendLine(j.header); err != nil {
			_ = f.Close()
			return nil, err
		}
	}
	return j, nil
}

// Spec returns the sweep spec the journal was opened with.
func (j *Journal) Spec() wire.SweepSpec { return j.header.Spec }

// Skipped returns how many corrupt journal lines the open discarded —
// typically the torn final line of a killed run. The jobs they would have
// resumed simply re-run.
func (j *Journal) Skipped() int { return j.skipped }

// Have returns the journaled result for key, if the job completed
// successfully in a previous run. Failed jobs are not "had": a resumed
// sweep re-runs them so transient failures heal.
func (j *Journal) Have(key string) (Result, bool) {
	r, ok := j.have[key]
	return r, ok
}

// Append journals one finished job.
func (j *Journal) Append(r Result) error {
	if j.f == nil {
		return fmt.Errorf("sweep: journal %s is closed", j.path)
	}
	return j.appendLine(wireRecord(r))
}

func (j *Journal) appendLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	return nil
}

// Compact atomically rewrites the journal as header + results in the
// given (job) order, replacing the completion-order append log. It closes
// the journal: a compacted journal is a finished sweep's canonical form.
func (j *Journal) Compact(results []Result) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(j.header); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	for _, r := range results {
		if err := enc.Encode(wireRecord(r)); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("sweep: %w", err)
	}
	// fsync before the rename: the compacted journal must be on stable
	// storage before it replaces the append log, or a crash could leave a
	// renamed-but-empty canonical file.
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("sweep: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("sweep: %w", err)
	}
	if err := j.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("sweep: %w", err)
	}
	// fsync the directory too: the rename itself must survive a power
	// loss, or the canonical journal could vanish with the temp name.
	return syncDir(filepath.Dir(j.path))
}

// syncDir fsyncs a directory so a just-renamed file survives a crash
// (the same discipline as analyzerd's snapshot replacement).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	return nil
}

// Close releases the journal's file handle. Safe to call twice.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	f := j.f
	j.f = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	return nil
}

// ReadJournal parses a journal file: the header plus every record, in file
// order. Records for the same key may repeat (an interrupted sweep re-ran
// a failed job); later lines supersede earlier ones. A record line that no
// longer parses — typically the torn final line of a killed run — is
// skipped and counted in skipped rather than refusing the whole journal:
// losing one checkpoint line must cost one re-run, not the resume. Only a
// missing, empty, or corrupt-header journal is an error.
func ReadJournal(path string) (header wire.SweepHeader, results []Result, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return wire.SweepHeader{}, nil, 0, fmt.Errorf("sweep: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return wire.SweepHeader{}, nil, 0, fmt.Errorf("sweep: %w", err)
		}
		return wire.SweepHeader{}, nil, 0, fmt.Errorf("sweep: journal %s is empty", path)
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		return wire.SweepHeader{}, nil, 0, fmt.Errorf("sweep: journal %s header: %w", path, err)
	}
	if header.Format != journalFormat {
		return wire.SweepHeader{}, nil, 0, fmt.Errorf("sweep: journal %s has format %d, want %d",
			path, header.Format, journalFormat)
	}
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec wire.SweepRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			skipped++
			continue
		}
		results = append(results, resultFromWire(rec))
	}
	if err := sc.Err(); err != nil {
		return wire.SweepHeader{}, nil, 0, fmt.Errorf("sweep: %w", err)
	}
	return header, results, skipped, nil
}
