package sweep

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/simtime"
)

// Options configure one engine run.
type Options struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Journal, when set, checkpoints every finished job and seeds the run
	// with previously completed ones (resume). The engine compacts it on
	// an uninterrupted finish.
	Journal *Journal
	// Progress, when set, receives throughput lines (done/total, cases/s,
	// ETA) while the sweep runs.
	Progress io.Writer
	// ProgressEvery reports progress every N finished jobs (default:
	// ~1% of the sweep, at least 1).
	ProgressEvery int
	// Clock measures wall-clock throughput for progress reporting; nil
	// means the system stopwatch. Progress is cosmetic — nothing derived
	// from the clock feeds results.
	Clock simtime.Stopwatch
	// OnResult, when set, observes every finished job from the merging
	// goroutine (completion order, single-threaded).
	OnResult func(Result)
	// Interrupt, when closed, stops dispatching new jobs; in-flight jobs
	// finish and are journaled, then Run returns with Interrupted set.
	Interrupt <-chan struct{}
	// StopAfter, when > 0, interrupts the sweep after that many jobs have
	// finished in this run (test hook for kill/resume coverage).
	StopAfter int
	// JobTimeout, when > 0, bounds each job's wall-clock execution: a
	// case that exceeds it is recorded as a per-job Err (like a panic)
	// and the worker moves on instead of wedging the pool. The abandoned
	// job's goroutine cannot be killed and may keep consuming CPU until
	// it finishes on its own; its late result is discarded. A resumed
	// sweep re-runs timed-out jobs like any other failure.
	JobTimeout time.Duration
	// Obs, when enabled, receives sweep-level metrics (updated live from
	// the merging goroutine, so a /metrics endpoint can watch progress)
	// and, on completion, a per-case trace laid out in job order on the
	// sim-time axis — byte-identical at any worker count. Per-job
	// simulations are not individually traced here; wall-clock state
	// (vedr_sweep_wall_ms) comes from the sanctioned stopwatch and feeds
	// only the live endpoint and summary line, never the trace.
	Obs *obs.Scope
}

// Summary is a completed (or interrupted) run: results merged in job
// order — byte-identical at any worker count — plus bookkeeping.
type Summary struct {
	// Results has one entry per input job, in input order. Jobs satisfied
	// from the journal and jobs run now are indistinguishable here. For
	// an interrupted run, never-started jobs have only Job/Key set and
	// their keys are listed in Pending.
	Results []Result
	// Skipped counts jobs satisfied from the journal.
	Skipped int
	// Failed lists the keys whose jobs returned an error, in job order.
	Failed []string
	// Pending lists the keys never started (interrupted runs), in job
	// order.
	Pending []string
	// Interrupted reports whether the sweep stopped before running every
	// job.
	Interrupted bool
}

// Run schedules jobs across the worker pool and merges their results in
// job order. One failing job degrades the sweep (captured in its Result
// and in Summary.Failed) rather than aborting it; Run itself fails only on
// misuse (duplicate keys, nil exec) or journal I/O errors.
func Run(jobs []Job, exec Exec, opts Options) (*Summary, error) {
	if exec == nil {
		return nil, fmt.Errorf("sweep: nil exec")
	}
	n := len(jobs)
	keys := make([]string, n)
	byKey := make(map[string]int, n)
	for i, job := range jobs {
		k := job.Key()
		if prev, dup := byKey[k]; dup {
			return nil, fmt.Errorf("sweep: jobs %d and %d share key %q", prev, i, k)
		}
		byKey[k] = i
		keys[i] = k
	}

	sum := &Summary{Results: make([]Result, n)}
	ran := make([]bool, n)
	var pending []int
	for i := range jobs {
		if opts.Journal != nil {
			if r, ok := opts.Journal.Have(keys[i]); ok {
				r.Job, r.Key = jobs[i], keys[i] // trust the job list over the journal copy
				sum.Results[i] = r
				ran[i] = true
				sum.Skipped++
				continue
			}
		}
		pending = append(pending, i)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	interrupt := func() { stopOnce.Do(func() { close(stop) }) }
	defer interrupt()
	if opts.Interrupt != nil {
		go func() {
			select {
			case <-opts.Interrupt:
				interrupt()
			case <-stop:
			}
		}()
	}

	prog := newProgress(opts, n, sum.Skipped)
	met := newSweepMetrics(opts, n, sum.Skipped)
	if len(pending) > 0 {
		type indexed struct {
			idx int
			r   Result
		}
		jobCh := make(chan int)
		resCh := make(chan indexed, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range jobCh {
					resCh <- indexed{idx, runJob(exec, jobs[idx], keys[idx], opts.JobTimeout)}
				}
			}()
		}
		go func() {
			defer close(jobCh)
			for _, idx := range pending {
				select {
				case jobCh <- idx:
				case <-stop:
					return
				}
			}
		}()
		go func() {
			wg.Wait()
			close(resCh)
		}()

		finished := 0
		var jerr error
		for x := range resCh {
			sum.Results[x.idx] = x.r
			ran[x.idx] = true
			finished++
			if opts.Journal != nil && jerr == nil {
				if err := opts.Journal.Append(x.r); err != nil {
					jerr = err
					interrupt()
				}
			}
			if opts.OnResult != nil {
				opts.OnResult(x.r)
			}
			met.step(x.r)
			prog.step()
			if opts.StopAfter > 0 && finished >= opts.StopAfter {
				interrupt()
			}
		}
		if jerr != nil {
			return nil, jerr
		}
	}

	for i := range jobs {
		if !ran[i] {
			sum.Interrupted = true
			sum.Results[i] = Result{Job: jobs[i], Key: keys[i]}
			sum.Pending = append(sum.Pending, keys[i])
			continue
		}
		if sum.Results[i].Err != "" {
			sum.Failed = append(sum.Failed, keys[i])
		}
	}
	met.finish(sum)
	traceSweep(opts.Obs.T(), sum)
	prog.done(sum)
	if opts.Journal != nil && !sum.Interrupted {
		if err := opts.Journal.Compact(sum.Results); err != nil {
			return nil, err
		}
	}
	return sum, nil
}

// runJob executes one job under the optional watchdog: a job that exceeds
// the timeout is captured as a per-job Err and abandoned (its goroutine
// keeps running, its eventual result lands in the buffered channel and is
// dropped), so one hung case cannot wedge the worker pool.
func runJob(exec Exec, job Job, key string, timeout time.Duration) Result {
	if timeout <= 0 {
		return runOne(exec, job, key)
	}
	done := make(chan Result, 1)
	go func() { done <- runOne(exec, job, key) }()
	//lint:ignore nosystime the watchdog bounds a hung case's real execution time; nothing derived from it feeds results
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-done:
		return r
	case <-timer.C:
		return Result{Job: job, Key: key,
			Err: fmt.Sprintf("timed out after %v (job abandoned)", timeout)}
	}
}

// runOne executes one job, converting errors (and panics from deep inside
// a case's simulation) into per-job capture so the sweep degrades instead
// of aborting.
func runOne(exec Exec, job Job, key string) (out Result) {
	defer func() {
		if p := recover(); p != nil {
			out = Result{Job: job, Key: key, Err: fmt.Sprintf("panic: %v", p)}
		}
	}()
	r, err := exec(job)
	r.Job, r.Key = job, key
	if err != nil {
		r.Err = err.Error()
	}
	return r
}

// progress reports sweep throughput on an io.Writer. All timing comes from
// the injected stopwatch (the sanctioned wall-clock gateway) and feeds
// only the report lines, never the results.
type progress struct {
	w     io.Writer
	clock simtime.Stopwatch
	every int
	total int
	base  int // jobs satisfied from the journal before this run
	done_ int
}

func newProgress(opts Options, total, skipped int) *progress {
	p := &progress{w: opts.Progress, total: total, base: skipped, done_: skipped}
	if p.w == nil {
		return p
	}
	p.every = opts.ProgressEvery
	if p.every <= 0 {
		p.every = total / 100
		if p.every < 1 {
			p.every = 1
		}
	}
	p.clock = opts.Clock
	if p.clock == nil {
		p.clock = simtime.NewSystemStopwatch()
	}
	p.clock.Start()
	if skipped > 0 {
		p.emit("sweep: resuming, %d/%d jobs already journaled\n", skipped, total)
	}
	return p
}

// emit writes one progress line. Progress is best-effort advisory output,
// but a dead sink (closed pipe, full disk) must not be written to for the
// rest of a long sweep: the first write failure disables reporting.
func (p *progress) emit(format string, args ...any) {
	if _, err := fmt.Fprintf(p.w, format, args...); err != nil {
		p.w = nil
	}
}

func (p *progress) step() {
	p.done_++
	if p.w == nil || (p.done_-p.base)%p.every != 0 {
		return
	}
	elapsed := p.clock.Elapsed()
	ran := p.done_ - p.base
	line := fmt.Sprintf("sweep: %d/%d cases", p.done_, p.total)
	if elapsed > 0 && ran > 0 {
		rate := float64(ran) / elapsed.Seconds()
		line += fmt.Sprintf(" (%.1f cases/s", rate)
		if left := p.total - p.done_; left > 0 && rate > 0 {
			eta := simtime.Duration(float64(left) / rate * 1e9)
			line += fmt.Sprintf(", eta %v", eta.Round(simtime.Duration(1e8)))
		}
		line += ")"
	}
	p.emit("%s\n", line)
}

func (p *progress) done(sum *Summary) {
	if p.w == nil {
		return
	}
	switch {
	case sum.Interrupted:
		p.emit("sweep: interrupted at %d/%d cases (%d pending)\n",
			p.done_, p.total, len(sum.Pending))
	default:
		elapsed := p.clock.Elapsed()
		line := fmt.Sprintf("sweep: %d/%d cases done", p.done_, p.total)
		if ran := p.done_ - p.base; ran > 0 && elapsed > 0 {
			line += fmt.Sprintf(" (%.1f cases/s)", float64(ran)/elapsed.Seconds())
		}
		if len(sum.Failed) > 0 {
			line += fmt.Sprintf(", %d failed", len(sum.Failed))
		}
		p.emit("%s\n", line)
	}
}
