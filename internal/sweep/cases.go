package sweep

import (
	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
)

// Exec runs one job and returns its result. The engine fills Result.Job
// and Result.Key and converts a returned error into per-job error capture,
// so an Exec only fills the measurement fields. Implementations are called
// concurrently from the worker pool and must not share mutable state
// between calls; everything a case needs is built from the job itself.
type Exec func(Job) (Result, error)

// Cases returns the standard scenario-case Exec: generate the job's case
// from its seed, run it under the job's system with the job's parameter
// overrides applied to base, and extract the figure aggregates. Every call
// builds a fresh topology, simulation kernel, and RNG from the job seed
// (inside scenario.GenerateCase/Run), so concurrent jobs are fully
// isolated and a job's result depends only on the job.
func Cases(cfg scenario.Config, base scenario.RunOptions) Exec {
	return func(j Job) (Result, error) {
		cs, err := scenario.GenerateCase(j.Kind, j.Seed, cfg)
		if err != nil {
			return Result{}, err
		}
		opts := base
		j.Params.Apply(&opts)
		res, err := scenario.Run(cs, j.System, cfg, opts)
		if err != nil {
			return Result{}, err
		}
		return Result{
			Outcome:        res.Outcome,
			Completed:      res.Completed,
			TelemetryBytes: res.Overhead.TelemetryBytes,
			BandwidthBytes: res.Overhead.Bandwidth(),
			CollectiveTime: res.CollectiveTime,
			Detected:       len(res.Detected),
			Confidence:     res.Confidence,
			Samples:        slowdownSamples(res.Records),
		}, nil
	}
}

// slowdownSamples extracts the positive per-step slowdowns (actual step
// duration minus the fastest same-index step) from a run's records, in
// record order — the distribution the slowdown harness summarizes.
func slowdownSamples(recs []collective.StepRecord) []simtime.Duration {
	minByStep := map[int]simtime.Duration{}
	for _, rec := range recs {
		d := rec.End.Sub(rec.Start)
		if cur, ok := minByStep[rec.Step]; !ok || d < cur {
			minByStep[rec.Step] = d
		}
	}
	var out []simtime.Duration
	for _, rec := range recs {
		if slow := rec.End.Sub(rec.Start) - minByStep[rec.Step]; slow > 0 {
			out = append(out, slow)
		}
	}
	return out
}
