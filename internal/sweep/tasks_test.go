package sweep

import (
	"sync/atomic"
	"testing"
)

func TestRunTasksOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 64} {
		got := RunTasks(17, workers, func(i int) int { return i * i })
		if len(got) != 17 {
			t.Fatalf("workers=%d: %d results, want 17", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunTasksEmpty(t *testing.T) {
	if got := RunTasks(0, 4, func(i int) int { return i }); got != nil {
		t.Fatalf("RunTasks(0) = %v, want nil", got)
	}
}

func TestRunTasksRunsEachOnce(t *testing.T) {
	var calls [40]atomic.Int32
	RunTasks(40, 8, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
}
