package sweep

import "sync"

// RunTasks fans n independent tasks out over a bounded worker pool and
// returns their results in task order. Each worker writes only its own
// pre-sized slot, so the merged output is byte-identical at any worker
// count — the same determinism contract as Run, for callers (cmd/vedrtest)
// whose work items are not scenario jobs. workers < 1 runs sequentially.
func RunTasks[T any](n, workers int, run func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = run(i)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
