package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/wire"
)

// fastConfig is the reduced-scale configuration for unit tests (mirrors
// the scenario/experiments test config: 1 MB steps, proportional fabric
// thresholds).
func fastConfig() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Scale = 1.0 / 360
	cfg.StepBytes = int64(1e6)
	cfg.CellSize = 16 << 10
	cfg.Fabric.PFCPauseThreshold = 64 << 10
	cfg.Fabric.PFCResumeThreshold = 32 << 10
	cfg.Fabric.ECNThreshold = 32 << 10
	return cfg
}

// testJobs is a small Fig 9-style grid: two kinds, one system, a few
// seeds each — real simulations, cheap enough for -race CI.
func testJobs() []Job {
	var jobs []Job
	for _, kind := range []scenario.AnomalyKind{scenario.Contention, scenario.Incast} {
		for seed := int64(0); seed < 3; seed++ {
			jobs = append(jobs, Job{Kind: kind, Seed: seed, System: scenario.Vedrfolnir})
		}
	}
	return jobs
}

// marshalResults renders merged results to canonical journal bytes, the
// byte-identity the determinism tests compare.
func marshalResults(t *testing.T, rs []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range rs {
		if err := enc.Encode(wireRecord(r)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestJobKeyStable(t *testing.T) {
	j := Job{Kind: scenario.Contention, Seed: 7, System: scenario.HawkeyeMinR,
		Params: Params{RTTFactor: 1.2, MaxDetectPerStep: 5, FixedRTTThreshold: 300, Unrestricted: true}}
	want := "flow-contention/hawkeye-minr/s7/rtt=1.2/det=5/fix=300/unrestricted"
	if got := j.Key(); got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	// The default operating point keys without parameter suffixes.
	plain := Job{Kind: scenario.Incast, Seed: 0, System: scenario.Vedrfolnir}
	if got, want := plain.Key(), "incast/vedrfolnir/s0"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
}

// TestSweepDeterminism is the engine's core contract: the same job list
// merges to byte-identical output at workers=1 and workers=8. Run under
// -race in CI.
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are slow")
	}
	cfg := fastConfig()
	exec := Cases(cfg, scenario.DefaultRunOptions(cfg))
	jobs := testJobs()

	seq, err := Run(jobs, exec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(jobs, exec, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, sum := range []*Summary{seq, par} {
		if len(sum.Failed) > 0 {
			t.Fatalf("unexpected failures: %v", sum.Failed)
		}
		if len(sum.Results) != len(jobs) {
			t.Fatalf("results = %d, want %d", len(sum.Results), len(jobs))
		}
	}
	a, b := marshalResults(t, seq.Results), marshalResults(t, par.Results)
	if !bytes.Equal(a, b) {
		t.Fatalf("workers=1 and workers=8 merged output differ:\n%s\nvs\n%s", a, b)
	}
	// Sanity: the sweep actually diagnosed something.
	detected := 0
	for _, r := range seq.Results {
		detected += r.Detected
	}
	if detected == 0 {
		t.Fatal("no case detected any culprit; sweep ran degenerate sims")
	}
}

// TestSweepResume kills a journaled sweep after N jobs and resumes it; the
// final compacted journal must be byte-identical to an uninterrupted
// run's. Run under -race in CI.
func TestSweepResume(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are slow")
	}
	cfg := fastConfig()
	exec := Cases(cfg, scenario.DefaultRunOptions(cfg))
	jobs := testJobs()
	spec := wire.SweepSpec{Name: "test", ScaleDen: 360}
	dir := t.TempDir()

	// Reference: one uninterrupted journaled run.
	full := filepath.Join(dir, "full.jsonl")
	j1, err := OpenJournal(full, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(jobs, exec, Options{Workers: 4, Journal: j1}); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(want, []byte("\n")); n != len(jobs)+1 {
		t.Fatalf("compacted journal has %d lines, want %d (header + jobs)", n, len(jobs)+1)
	}

	// Interrupted run: stop after 2 finished jobs.
	part := filepath.Join(dir, "part.jsonl")
	j2, err := OpenJournal(part, spec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(jobs, exec, Options{Workers: 2, Journal: j2, StopAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if !sum.Interrupted || len(sum.Pending) == 0 {
		t.Fatalf("StopAfter=2 did not interrupt: interrupted=%v pending=%d",
			sum.Interrupted, len(sum.Pending))
	}

	// Resume: skipped jobs come from the journal, the rest run now, and
	// the compacted result matches the uninterrupted journal exactly.
	j3, err := OpenJournal(part, spec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err = Run(jobs, exec, Options{Workers: 4, Journal: j3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Interrupted {
		t.Fatal("resume did not complete")
	}
	if sum.Skipped < 2 {
		t.Fatalf("resume skipped %d jobs, want >= 2", sum.Skipped)
	}
	got, err := os.ReadFile(part)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed journal differs from uninterrupted journal:\n%s\nvs\n%s", got, want)
	}
}

// TestSweepErrorCapture: one failing job degrades the sweep instead of
// aborting it, and a resume re-runs the failed job so transient failures
// heal.
func TestSweepErrorCapture(t *testing.T) {
	jobs := []Job{
		{Kind: scenario.Contention, Seed: 0, System: scenario.Vedrfolnir},
		{Kind: scenario.Contention, Seed: 1, System: scenario.Vedrfolnir},
		{Kind: scenario.Contention, Seed: 2, System: scenario.Vedrfolnir},
	}
	attempt := map[int64]int{}
	// Seed 1 fails on its first attempt only (transient); the exec runs
	// on one worker so the attempt map needs no locking.
	exec := func(j Job) (Result, error) {
		attempt[j.Seed]++
		if j.Seed == 1 && attempt[j.Seed] == 1 {
			return Result{}, fmt.Errorf("transient: no route to host")
		}
		return Result{Outcome: scenario.Outcome(0), Completed: true, TelemetryBytes: 10 * j.Seed}, nil
	}
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	spec := wire.SweepSpec{Name: "test", ScaleDen: 360}
	j1, err := OpenJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(jobs, exec, Options{Workers: 1, Journal: j1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failed) != 1 || sum.Failed[0] != jobs[1].Key() {
		t.Fatalf("Failed = %v, want [%s]", sum.Failed, jobs[1].Key())
	}
	if sum.Results[0].Err != "" || sum.Results[2].Err != "" {
		t.Fatal("healthy jobs contaminated by the failing one")
	}
	if !strings.Contains(sum.Results[1].Err, "no route") {
		t.Fatalf("captured error = %q", sum.Results[1].Err)
	}

	// Resume: the two successes are skipped, the failure re-runs and now
	// succeeds; the journal ends fully healthy.
	j2, err := OpenJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err = Run(jobs, exec, Options{Workers: 1, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped != 2 {
		t.Fatalf("resume skipped %d, want 2 (failed job must re-run)", sum.Skipped)
	}
	if len(sum.Failed) != 0 {
		t.Fatalf("transient failure did not heal: %v", sum.Failed)
	}
	if got := attempt[1]; got != 2 {
		t.Fatalf("failing job ran %d times, want 2", got)
	}
	_, results, _, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("compacted journal has %d records, want %d", len(results), len(jobs))
	}
	for _, r := range results {
		if r.Err != "" {
			t.Fatalf("compacted journal still records failure: %+v", r)
		}
	}
}

// TestSweepPanicCapture: a panic deep inside one case is captured per-job.
func TestSweepPanicCapture(t *testing.T) {
	jobs := []Job{
		{Kind: scenario.Contention, Seed: 0, System: scenario.Vedrfolnir},
		{Kind: scenario.Contention, Seed: 1, System: scenario.Vedrfolnir},
	}
	exec := func(j Job) (Result, error) {
		if j.Seed == 1 {
			var m map[string]int
			m["boom"] = 1 // deliberate nil-map write
		}
		return Result{Completed: true}, nil
	}
	sum, err := Run(jobs, exec, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failed) != 1 {
		t.Fatalf("Failed = %v", sum.Failed)
	}
	if !strings.Contains(sum.Results[1].Err, "panic") {
		t.Fatalf("panic not captured: %q", sum.Results[1].Err)
	}
}

func TestSweepDuplicateKeysRejected(t *testing.T) {
	jobs := []Job{
		{Kind: scenario.Contention, Seed: 0, System: scenario.Vedrfolnir},
		{Kind: scenario.Contention, Seed: 0, System: scenario.Vedrfolnir},
	}
	if _, err := Run(jobs, func(Job) (Result, error) { return Result{}, nil }, Options{}); err == nil {
		t.Fatal("duplicate job keys accepted")
	}
}

func TestJournalSpecMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, wire.SweepSpec{Name: "fig9", ScaleDen: 90})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, wire.SweepSpec{Name: "fig12", ScaleDen: 90}); err == nil {
		t.Fatal("journal accepted a different sweep spec")
	}
	if _, err := OpenJournal(path, wire.SweepSpec{Name: "fig9", ScaleDen: 360}); err == nil {
		t.Fatal("journal accepted a different scale")
	}
}

// TestResultJournalRoundTrip: every Result field the harnesses consume
// survives the journal losslessly — the precondition for resume producing
// byte-identical figures.
func TestResultJournalRoundTrip(t *testing.T) {
	in := Result{
		Job: Job{Kind: scenario.PFCStorm, Seed: 12, System: scenario.HawkeyeMaxR,
			Params: Params{RTTFactor: 2.4, MaxDetectPerStep: 3}},
		Err:            "",
		Outcome:        scenario.Outcome(1),
		Completed:      true,
		TelemetryBytes: 123456,
		BandwidthBytes: 654321,
		CollectiveTime: 987654321,
		Detected:       4,
		Samples:        []simtime.Duration{3, 1, 4, 1, 5},
	}
	in.Key = in.Job.Key()
	b, err := json.Marshal(wireRecord(in))
	if err != nil {
		t.Fatal(err)
	}
	var rec wire.SweepRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	out := resultFromWire(rec)
	b2, err := json.Marshal(wireRecord(out))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("journal round trip not lossless:\n%s\nvs\n%s", b, b2)
	}
}

// fakeClock is a deterministic stopwatch for progress tests.
type fakeClock struct{ now simtime.Duration }

func (c *fakeClock) Start()                    { c.now = 0 }
func (c *fakeClock) Elapsed() simtime.Duration { c.now += 250 * 1e6; return c.now }

func TestSweepProgressReporting(t *testing.T) {
	jobs := make([]Job, 5)
	for i := range jobs {
		jobs[i] = Job{Kind: scenario.Contention, Seed: int64(i), System: scenario.Vedrfolnir}
	}
	var buf bytes.Buffer
	_, err := Run(jobs, func(Job) (Result, error) { return Result{Completed: true}, nil },
		Options{Workers: 2, Progress: &buf, ProgressEvery: 1, Clock: &fakeClock{}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "5/5 cases") {
		t.Fatalf("no completion line in progress output:\n%s", out)
	}
	if !strings.Contains(out, "cases/s") {
		t.Fatalf("no throughput in progress output:\n%s", out)
	}
}
