package sweep

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/wire"
)

// TestJobTimeoutWatchdog: a wedged case must not wedge the pool. The
// watchdog records a per-job timeout error, the remaining jobs complete,
// and a journaled resume re-runs the timed-out job (Err != "" re-runs).
func TestJobTimeoutWatchdog(t *testing.T) {
	jobs := []Job{
		{Kind: scenario.Contention, Seed: 0, System: scenario.Vedrfolnir},
		{Kind: scenario.Contention, Seed: 1, System: scenario.Vedrfolnir},
		{Kind: scenario.Contention, Seed: 2, System: scenario.Vedrfolnir},
	}
	release := make(chan struct{})
	var hang atomic.Bool
	hang.Store(true)
	exec := func(j Job) (Result, error) {
		if j.Seed == 1 && hang.Load() {
			<-release // simulate an event-loop livelock
		}
		return Result{Completed: true, TelemetryBytes: 10 * j.Seed}, nil
	}
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	spec := wire.SweepSpec{Name: "test", ScaleDen: 360}
	j1, err := OpenJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Run(jobs, exec, Options{Workers: 3, Journal: j1, JobTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failed) != 1 || sum.Failed[0] != jobs[1].Key() {
		t.Fatalf("Failed = %v, want [%s]", sum.Failed, jobs[1].Key())
	}
	if !strings.Contains(sum.Results[1].Err, "timed out") {
		t.Fatalf("watchdog error = %q", sum.Results[1].Err)
	}
	if sum.Results[0].Err != "" || sum.Results[2].Err != "" {
		t.Fatal("healthy jobs contaminated by the hung one")
	}
	close(release) // let the abandoned goroutine finish

	// Resume: the hang was transient; the timed-out job re-runs and heals.
	hang.Store(false)
	j2, err := OpenJournal(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err = Run(jobs, exec, Options{Workers: 1, Journal: j2, JobTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped != 2 {
		t.Fatalf("resume skipped %d, want 2 (timed-out job must re-run)", sum.Skipped)
	}
	if len(sum.Failed) != 0 {
		t.Fatalf("timed-out job did not heal on resume: %v", sum.Failed)
	}
}

// TestJobTimeoutDisabledByDefault: zero JobTimeout means no watchdog
// goroutine — results flow through the direct path.
func TestJobTimeoutDisabledByDefault(t *testing.T) {
	jobs := []Job{{Kind: scenario.Contention, Seed: 0, System: scenario.Vedrfolnir}}
	sum, err := Run(jobs, func(Job) (Result, error) {
		return Result{Completed: true}, nil
	}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failed) != 0 || !sum.Results[0].Completed {
		t.Fatalf("plain run misbehaved: %+v", sum.Results[0])
	}
}

func TestJobKeyChaosLoss(t *testing.T) {
	j := Job{Kind: scenario.Contention, Seed: 4, System: scenario.Vedrfolnir,
		Params: Params{ChaosLoss: 0.01}}
	if got, want := j.Key(), "flow-contention/vedrfolnir/s4/loss=0.01"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
	// Zero loss keys without a suffix, so pre-chaos journals keep matching.
	plain := Job{Kind: scenario.Contention, Seed: 4, System: scenario.Vedrfolnir}
	if got, want := plain.Key(), "flow-contention/vedrfolnir/s4"; got != want {
		t.Fatalf("Key() = %q, want %q", got, want)
	}
}

// TestChaosResultJournalRoundTrip: the chaos-grid fields survive the
// journal losslessly, like every other Result field.
func TestChaosResultJournalRoundTrip(t *testing.T) {
	in := Result{
		Job: Job{Kind: scenario.Incast, Seed: 3, System: scenario.Vedrfolnir,
			Params: Params{ChaosLoss: 0.05}},
		Outcome:        scenario.Outcome(0),
		Completed:      true,
		TelemetryBytes: 4242,
		Confidence:     0.875,
	}
	in.Key = in.Job.Key()
	b, err := json.Marshal(wireRecord(in))
	if err != nil {
		t.Fatal(err)
	}
	var rec wire.SweepRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	out := resultFromWire(rec)
	if out.Job.Params.ChaosLoss != in.Job.Params.ChaosLoss {
		t.Fatalf("ChaosLoss lost: %v", out.Job.Params.ChaosLoss)
	}
	if out.Confidence != in.Confidence {
		t.Fatalf("Confidence lost: %v", out.Confidence)
	}
	b2, err := json.Marshal(wireRecord(out))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("journal round trip not lossless:\n%s\nvs\n%s", b, b2)
	}
}
