package chaos

import (
	"testing"
	"time"

	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

func TestZeroConfigInactive(t *testing.T) {
	if (Config{}).Active() {
		t.Fatal("zero Config must be inactive")
	}
	if !(Config{Seed: 1}).Active() {
		t.Fatal("Seed-only Config must be active (the byte-identity control)")
	}
	if !UniformLoss(0.01).Active() {
		t.Fatal("UniformLoss must be active")
	}
}

func TestUniformLossCoversAllClasses(t *testing.T) {
	c := UniformLoss(0.05)
	if c.NotifyDropRate != 0.05 || c.PollLossRate != 0.05 || c.PortLossRate != 0.05 {
		t.Fatalf("UniformLoss(0.05) = %+v", c)
	}
}

// TestZeroRateTransparent is the byte-identity contract at the unit level:
// with all rates zero, every fault hook behaves as if the layer were
// absent — one on-time packet copy, no lost polls or ports, no kills, and
// no counter movement — regardless of how many draws happen.
func TestZeroRateTransparent(t *testing.T) {
	c := New(Config{Seed: 99}, 7)
	hosts := []topo.NodeID{1, 2, 3, 4}
	for i := 0; i < 1000; i++ {
		fates := c.TapControl(1, 2, nil)
		if len(fates) != 1 || fates[0] != 0 {
			t.Fatalf("zero-rate tap returned %v, want one on-time copy", fates)
		}
		if c.PollLost() {
			t.Fatal("zero-rate PollLost returned true")
		}
		if c.PortLost(topo.PortID{Node: 1, Port: 0}) {
			t.Fatal("zero-rate PortLost returned true")
		}
	}
	if plan := c.KillPlan(hosts); plan != nil {
		t.Fatalf("zero-rate KillPlan = %v", plan)
	}
	if c.Stats != (Stats{}) {
		t.Fatalf("zero-rate run moved counters: %+v", c.Stats)
	}
}

// TestDrawDeterminism: two injectors with the same (config, case seed)
// produce the same fault sequence; a different case seed produces a
// different one (with overwhelming probability at these rates).
func TestDrawDeterminism(t *testing.T) {
	cfg := Config{
		NotifyDropRate: 0.2, NotifyDupRate: 0.2,
		NotifyDelayRate: 0.2, NotifyDelay: simtime.Duration(time.Microsecond),
		PollLossRate: 0.2, PortLossRate: 0.2,
	}
	sequence := func(caseSeed int64) ([]int, Stats) {
		c := New(cfg, caseSeed)
		var seq []int
		for i := 0; i < 200; i++ {
			seq = append(seq, len(c.TapControl(1, 2, nil)))
			if c.PollLost() {
				seq = append(seq, -1)
			}
			if c.PortLost(topo.PortID{Node: 3, Port: 1}) {
				seq = append(seq, -2)
			}
		}
		return seq, c.Stats
	}
	seqA, statsA := sequence(42)
	seqB, statsB := sequence(42)
	if len(seqA) != len(seqB) {
		t.Fatalf("same-seed sequences differ in length: %d vs %d", len(seqA), len(seqB))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("same-seed sequences diverge at %d", i)
		}
	}
	if statsA != statsB {
		t.Fatalf("same-seed stats differ: %+v vs %+v", statsA, statsB)
	}
	if statsA.Total() == 0 {
		t.Fatal("20%% rates over 200 draws injected nothing; the RNG is not wired")
	}
	seqC, _ := sequence(43)
	same := len(seqA) == len(seqC)
	if same {
		for i := range seqA {
			if seqA[i] != seqC[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different case seeds produced identical fault sequences")
	}
}

func TestTapControlFates(t *testing.T) {
	// Forced delay + duplicate: every copy carries the configured delay and
	// the duplicate trails the delayed original.
	d := simtime.Duration(5 * time.Microsecond)
	c := New(Config{NotifyDelayRate: 1, NotifyDelay: d, NotifyDupRate: 1}, 1)
	fates := c.TapControl(1, 2, nil)
	if len(fates) != 2 {
		t.Fatalf("forced dup returned %d copies", len(fates))
	}
	if fates[0] != d || fates[1] != 2*d {
		t.Fatalf("fates = %v, want [%v %v]", fates, d, 2*d)
	}
	// Forced drop wins over everything else.
	c = New(Config{NotifyDropRate: 1, NotifyDupRate: 1}, 1)
	if fates := c.TapControl(1, 2, nil); fates != nil {
		t.Fatalf("forced drop returned copies: %v", fates)
	}
	if c.Stats.NotifyDropped != 1 || c.Stats.NotifyDuplicated != 0 {
		t.Fatalf("drop stats: %+v", c.Stats)
	}
}

func TestKillPlan(t *testing.T) {
	hosts := []topo.NodeID{10, 11, 12}
	window := simtime.Duration(100 * time.Microsecond)
	down := simtime.Duration(30 * time.Microsecond)
	c := New(Config{MonitorKillRate: 1, MonitorKillWindow: window, MonitorDownFor: down}, 5)
	plan := c.KillPlan(hosts)
	if len(plan) != len(hosts) {
		t.Fatalf("rate-1 kill plan covers %d/%d hosts", len(plan), len(hosts))
	}
	for i, kill := range plan {
		if kill.Host != hosts[i] {
			t.Fatalf("kill %d host = %v, want %v (draw order must follow input order)", i, kill.Host, hosts[i])
		}
		if kill.At >= simtime.Time(window) {
			t.Fatalf("kill at %v outside window %v", kill.At, window)
		}
		if kill.RestartAt != kill.At.Add(down) {
			t.Fatalf("restart %v, want kill+%v", kill.RestartAt, down)
		}
	}
	if c.Stats.MonitorKills != len(hosts) {
		t.Fatalf("MonitorKills = %d", c.Stats.MonitorKills)
	}
	// Zero window pins kills to time 0.
	c = New(Config{MonitorKillRate: 1, MonitorDownFor: down}, 5)
	for _, kill := range c.KillPlan(hosts) {
		if kill.At != 0 {
			t.Fatalf("zero-window kill at %v, want 0", kill.At)
		}
	}
}
