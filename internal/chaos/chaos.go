// Package chaos is the deterministic fault-injection layer for the
// diagnosis pipeline. The paper's detection loop leans on control traffic
// that is assumed to arrive — polling queries and their telemetry
// responses (§III-C3), and the highest-priority notification packets that
// transfer detection opportunities (§III-C2, Figs 5–8) — but a production
// fabric eats diagnosis traffic exactly when diagnosis matters most. This
// package injects those faults on purpose, so the rest of the pipeline can
// be held to a graceful-degradation contract: partial telemetry must yield
// a lower-confidence diagnosis, never a hang, panic, or silently absent
// report.
//
// Determinism contract: every fault decision is drawn from one *rand.Rand
// seeded from (case seed, Config.Seed). The simulation kernel is
// single-goroutine and its event order is deterministic, so the draw
// sequence — and therefore the exact set of dropped/delayed/duplicated
// packets, lost port responses, and monitor kills — is a pure function of
// the seeds and the configuration. No wall clock, no global randomness
// (vedrlint-enforced). A zero-rate configuration is fully transparent:
// every tap delivers exactly one on-time copy and no fault counter moves,
// so a chaos-wrapped run at 0% loss is byte-identical to an unwrapped one.
package chaos

import (
	"math/rand"

	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// Config sets the per-class fault rates. All rates are probabilities in
// [0, 1]; the zero Config disables the layer entirely.
type Config struct {
	// Seed perturbs the injected RNG independently of the case seed. A
	// Config whose only non-zero field is Seed wires the chaos layer in
	// with zero fault rates — the 0%-loss control used to verify the
	// wrapped pipeline is byte-identical to the unwrapped one.
	Seed int64

	// Control-plane packet faults, applied to every packet routed through
	// fabric.Network.DeliverControl (the notification packets of Fig 6).
	NotifyDropRate  float64
	NotifyDupRate   float64
	NotifyDelayRate float64
	// NotifyDelay is the extra latency added to a delayed (or duplicated)
	// copy. A delay draw with NotifyDelay <= 0 has no effect.
	NotifyDelay simtime.Duration

	// PollLossRate loses a detection's entire poll round trip: the
	// monitor's query (or the switches' responses) never completes, and
	// the monitor must re-arm the detection (bounded retries, timeout
	// derived from the estimated FCT).
	PollLossRate float64

	// PortLossRate loses a single visited switch port's telemetry
	// response within an otherwise-successful poll, producing a partial
	// report (Report.PortsMissed counts the holes).
	PortLossRate float64

	// MonitorKillRate is the probability that a given host monitor is
	// killed once mid-collective, losing its volatile detection state.
	MonitorKillRate float64
	// MonitorKillWindow bounds the kill time: uniform in [0, window).
	MonitorKillWindow simtime.Duration
	// MonitorDownFor is how long a killed monitor stays dead before it
	// restarts (it re-synchronizes at its next step start).
	MonitorDownFor simtime.Duration
}

// Active reports whether the layer should be wired in at all. Note that a
// Config with only Seed set is Active but injects nothing — that is the
// byte-identity control.
func (c Config) Active() bool { return c != Config{} }

// UniformLoss returns the robustness grid's operating point: the same
// loss rate applied to every control-packet class (notifications, poll
// round trips, per-port telemetry responses).
func UniformLoss(rate float64) Config {
	return Config{NotifyDropRate: rate, PollLossRate: rate, PortLossRate: rate}
}

// Stats counts every injected fault, for assertions and result reporting.
type Stats struct {
	NotifyDropped    int
	NotifyDelayed    int
	NotifyDuplicated int
	PollsLost        int
	PortsLost        int
	MonitorKills     int
}

// Total sums all injected faults.
func (s Stats) Total() int {
	return s.NotifyDropped + s.NotifyDelayed + s.NotifyDuplicated +
		s.PollsLost + s.PortsLost + s.MonitorKills
}

// Chaos is one run's fault injector. It is not safe for concurrent use;
// like everything else in a scenario run it lives on the single-goroutine
// simulation kernel.
type Chaos struct {
	cfg Config
	rng *rand.Rand

	// Stats tallies the faults actually injected.
	Stats Stats
}

// New builds the injector for one case. The RNG seed mixes the case seed
// with Config.Seed so chaos draws are independent of the scenario's own
// case-construction and kernel RNG streams.
func New(cfg Config, caseSeed int64) *Chaos {
	seed := caseSeed*-0x61C8864680B583EB + cfg.Seed ^ 0x5DEECE66D
	return &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Config returns the configuration the injector was built with.
func (c *Chaos) Config() Config { return c.cfg }

// TapControl implements fabric.ControlTap: the fate of one control packet.
// The returned slice holds one extra latency per delivered copy; empty
// means dropped. Draw order (drop, delay, duplicate) is fixed so the fault
// sequence is stable for a given seed and rate set.
func (c *Chaos) TapControl(from, to topo.NodeID, pkt *fabric.Packet) []simtime.Duration {
	if c.cfg.NotifyDropRate > 0 && c.rng.Float64() < c.cfg.NotifyDropRate {
		c.Stats.NotifyDropped++
		return nil
	}
	fates := []simtime.Duration{0}
	if c.cfg.NotifyDelayRate > 0 && c.cfg.NotifyDelay > 0 && c.rng.Float64() < c.cfg.NotifyDelayRate {
		c.Stats.NotifyDelayed++
		fates[0] = c.cfg.NotifyDelay
	}
	if c.cfg.NotifyDupRate > 0 && c.rng.Float64() < c.cfg.NotifyDupRate {
		c.Stats.NotifyDuplicated++
		fates = append(fates, fates[0]+c.cfg.NotifyDelay)
	}
	return fates
}

// PollLost implements monitor.PollGate: whether this detection's poll
// round trip is lost entirely.
func (c *Chaos) PollLost() bool {
	if c.cfg.PollLossRate > 0 && c.rng.Float64() < c.cfg.PollLossRate {
		c.Stats.PollsLost++
		return true
	}
	return false
}

// PortLost implements telemetry.PortFault: whether one visited switch
// port's response is lost within an otherwise-successful poll.
func (c *Chaos) PortLost(p topo.PortID) bool {
	if c.cfg.PortLossRate > 0 && c.rng.Float64() < c.cfg.PortLossRate {
		c.Stats.PortsLost++
		return true
	}
	return false
}

// Kill is one scheduled monitor kill/restart pair.
type Kill struct {
	Host      topo.NodeID
	At        simtime.Time
	RestartAt simtime.Time
}

// KillPlan draws the monitor kill schedule for the given hosts. Callers
// must pass hosts in a deterministic (sorted) order — the draw sequence
// follows it. A zero MonitorKillWindow pins every kill to time 0 (dead
// from the start until restart).
func (c *Chaos) KillPlan(hosts []topo.NodeID) []Kill {
	if c.cfg.MonitorKillRate <= 0 {
		return nil
	}
	var plan []Kill
	for _, h := range hosts {
		if c.rng.Float64() >= c.cfg.MonitorKillRate {
			continue
		}
		c.Stats.MonitorKills++
		var at simtime.Time
		if c.cfg.MonitorKillWindow > 0 {
			at = simtime.Time(c.rng.Int63n(int64(c.cfg.MonitorKillWindow)))
		}
		plan = append(plan, Kill{Host: h, At: at, RestartAt: at.Add(c.cfg.MonitorDownFor)})
	}
	return plan
}
