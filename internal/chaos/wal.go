package chaos

import (
	"math/rand"
	"sort"
)

// WALFaults draws the storage-level fault coordinates the crash-recovery
// harness injects into the analyzer daemon's write-ahead log: where to
// SIGKILL a run mid-ingest, where to shear a log file, and which bit to
// flip to simulate media corruption. Like every chaos source it is a pure
// function of its seed — the same seed replays the same crash schedule,
// so a recovery failure reproduces exactly.
type WALFaults struct {
	rng *rand.Rand
}

// walSeedMix decorrelates the WAL fault stream from other consumers of the
// same case seed (same constant family as the kernel's seed mixing).
const walSeedMix = 0x1E3779B97F4A7C15

// NewWALFaults builds a deterministic fault source for one seed.
func NewWALFaults(seed int64) *WALFaults {
	return &WALFaults{rng: rand.New(rand.NewSource(seed ^ walSeedMix))}
}

// CutPoint picks the byte offset at which to shear a file of the given
// size — the stand-in for a crash that tore a partially-written tail. The
// draw is uniform over [0, size): cutting at header boundaries, inside a
// length prefix, and mid-payload are all reachable.
func (w *WALFaults) CutPoint(size int64) int64 {
	if size <= 0 {
		return 0
	}
	return w.rng.Int63n(size)
}

// FlipBit picks a corruption coordinate in a file of the given size: the
// byte offset and the bit (0-7) to invert. It models in-place media
// corruption rather than a torn write, so recovery's CRC check — not the
// length framing — has to catch it.
func (w *WALFaults) FlipBit(size int64) (offset int64, bit uint) {
	if size <= 0 {
		return 0, 0
	}
	return w.rng.Int63n(size), uint(w.rng.Intn(8))
}

// ShardKill schedules the SIGKILL of one fleet shard: after the router
// has seen AfterAcked acknowledged messages in total, shard Shard dies
// (and its supervisor restarts it).
type ShardKill struct {
	// AfterAcked is the cumulative fleet-wide acked-message count that
	// triggers the kill.
	AfterAcked int
	// Shard is the shard index to SIGKILL.
	Shard int
}

// ShardKills draws a fleet kill schedule: every shard in [0, shards) is
// killed exactly once, at distinct acked counts in [1, msgs], so the
// kill-any-shard byte-identity property is exercised against each fleet
// member in one run. The plan comes back sorted by AfterAcked so the
// harness consumes it as it counts acknowledgements; which shard dies at
// which point is a seeded shuffle. Fewer kills come back when msgs is too
// small to supply a distinct point per shard.
func (w *WALFaults) ShardKills(shards, msgs int) []ShardKill {
	if shards <= 0 {
		return nil
	}
	points := w.CrashPoints(shards, msgs)
	order := w.rng.Perm(shards)
	plan := make([]ShardKill, 0, len(points))
	for i, p := range points {
		plan = append(plan, ShardKill{AfterAcked: p, Shard: order[i]})
	}
	return plan
}

// Rebalance cut points: the phases of a live fleet resize at which a
// chaos harness SIGKILLs a shard. The strings match the fleet router's
// OnPhase announcements.
const (
	// KillBeforeQuiesce fires before the router fences moved clients —
	// the shard dies with traffic still flowing to it.
	KillBeforeQuiesce = "before-quiesce"
	// KillDuringHandoff fires between the donor dumps and the adopt
	// deliveries — the shard dies holding (or owed) moved state.
	KillDuringHandoff = "during-handoff"
	// KillAfterFlip fires after the new map is installed and traffic
	// re-admitted — the shard dies while the fleet settles.
	KillAfterFlip = "after-flip"
)

// RebalanceKill schedules the SIGKILL of one shard at a rebalance cut
// point.
type RebalanceKill struct {
	// Phase is the cut point (KillBeforeQuiesce / KillDuringHandoff /
	// KillAfterFlip).
	Phase string
	// Shard is the shard index to SIGKILL.
	Shard int
}

// RebalanceKills draws the mid-rebalance kill schedule for a resize
// from oldShards to newShards: every (cut point, shard) pair that can
// exist at that moment appears exactly once — a shard not yet started
// (grow) cannot die before quiesce, and a shard already stopped
// (shrink) cannot die after the flip — in seeded order. Iterating the
// plan, one full fleet run per entry, exercises the byte-identity
// property at every reachable crash coordinate of the rebalance.
func (w *WALFaults) RebalanceKills(oldShards, newShards int) []RebalanceKill {
	if oldShards <= 0 || newShards <= 0 {
		return nil
	}
	max := oldShards
	if newShards > max {
		max = newShards
	}
	var plan []RebalanceKill
	for s := 0; s < max; s++ {
		for _, ph := range []string{KillBeforeQuiesce, KillDuringHandoff, KillAfterFlip} {
			if ph == KillBeforeQuiesce && s >= oldShards {
				continue // a grow target doesn't exist yet
			}
			if ph == KillAfterFlip && s >= newShards {
				continue // a shrink donor is already stopped
			}
			plan = append(plan, RebalanceKill{Phase: ph, Shard: s})
		}
	}
	w.rng.Shuffle(len(plan), func(i, j int) { plan[i], plan[j] = plan[j], plan[i] })
	return plan
}

// CrashPoints draws n distinct message indices in [1, msgs] at which the
// harness SIGKILLs the daemon mid-ingest, sorted ascending so a run can
// consume them as it counts acknowledged messages. Fewer than n points
// come back when msgs is too small to supply distinct ones.
func (w *WALFaults) CrashPoints(n, msgs int) []int {
	if n <= 0 || msgs <= 0 {
		return nil
	}
	if n > msgs {
		n = msgs
	}
	seen := make(map[int]bool, n)
	points := make([]int, 0, n)
	for len(points) < n {
		p := w.rng.Intn(msgs) + 1
		if seen[p] {
			continue
		}
		seen[p] = true
		points = append(points, p)
	}
	sort.Ints(points)
	return points
}
