package chaos

import (
	"reflect"
	"testing"
)

func TestWALFaultsDeterministic(t *testing.T) {
	a, b := NewWALFaults(7), NewWALFaults(7)
	for i := 0; i < 50; i++ {
		if ca, cb := a.CutPoint(1000), b.CutPoint(1000); ca != cb {
			t.Fatalf("draw %d: cut points diverge: %d vs %d", i, ca, cb)
		}
	}
	offA, bitA := a.FlipBit(512)
	offB, bitB := b.FlipBit(512)
	if offA != offB || bitA != bitB {
		t.Fatalf("flip coordinates diverge: (%d,%d) vs (%d,%d)", offA, bitA, offB, bitB)
	}
	pa, pb := a.CrashPoints(5, 100), b.CrashPoints(5, 100)
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("crash points diverge: %v vs %v", pa, pb)
	}
	if pc := NewWALFaults(8).CrashPoints(5, 100); reflect.DeepEqual(pa, pc) {
		t.Fatalf("different seeds drew identical crash points: %v", pa)
	}
}

func TestWALFaultsBounds(t *testing.T) {
	w := NewWALFaults(3)
	for i := 0; i < 100; i++ {
		if c := w.CutPoint(64); c < 0 || c >= 64 {
			t.Fatalf("cut point %d out of [0,64)", c)
		}
		off, bit := w.FlipBit(64)
		if off < 0 || off >= 64 || bit > 7 {
			t.Fatalf("flip (%d,%d) out of range", off, bit)
		}
	}
	if c := w.CutPoint(0); c != 0 {
		t.Fatalf("cut of empty file = %d, want 0", c)
	}
	points := w.CrashPoints(10, 4)
	if len(points) != 4 {
		t.Fatalf("asked for 10 points over 4 messages, got %d", len(points))
	}
	last := 0
	for _, p := range points {
		if p < 1 || p > 4 {
			t.Fatalf("crash point %d out of [1,4]", p)
		}
		if p <= last {
			t.Fatalf("crash points not strictly ascending: %v", points)
		}
		last = p
	}
	if w.CrashPoints(0, 10) != nil || w.CrashPoints(3, 0) != nil {
		t.Fatal("degenerate crash point requests must return nil")
	}
}

func TestShardKillsCoverEveryShardOnce(t *testing.T) {
	a, b := NewWALFaults(11), NewWALFaults(11)
	pa, pb := a.ShardKills(4, 40), b.ShardKills(4, 40)
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("same seed drew different kill plans: %v vs %v", pa, pb)
	}
	if len(pa) != 4 {
		t.Fatalf("plan has %d kills, want 4", len(pa))
	}
	seen := map[int]bool{}
	last := 0
	for _, k := range pa {
		if k.Shard < 0 || k.Shard >= 4 {
			t.Fatalf("kill targets shard %d outside [0,4)", k.Shard)
		}
		if seen[k.Shard] {
			t.Fatalf("shard %d killed twice: %v", k.Shard, pa)
		}
		seen[k.Shard] = true
		if k.AfterAcked < 1 || k.AfterAcked > 40 {
			t.Fatalf("kill point %d outside [1,40]", k.AfterAcked)
		}
		if k.AfterAcked <= last {
			t.Fatalf("kill points not strictly ascending: %v", pa)
		}
		last = k.AfterAcked
	}
	if pc := NewWALFaults(12).ShardKills(4, 40); reflect.DeepEqual(pa, pc) {
		t.Fatalf("different seeds drew identical kill plans: %v", pa)
	}
}

func TestRebalanceKillsCoverEveryCutPoint(t *testing.T) {
	a, b := NewWALFaults(11), NewWALFaults(11)
	pa, pb := a.RebalanceKills(2, 3), b.RebalanceKills(2, 3)
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("same seed drew different rebalance kill plans: %v vs %v", pa, pb)
	}
	// Grow 2→3: shards 0,1 can die at all three phases; the new shard 2
	// exists only from the handoff on.
	want := map[RebalanceKill]bool{
		{KillBeforeQuiesce, 0}: true, {KillDuringHandoff, 0}: true, {KillAfterFlip, 0}: true,
		{KillBeforeQuiesce, 1}: true, {KillDuringHandoff, 1}: true, {KillAfterFlip, 1}: true,
		{KillDuringHandoff, 2}: true, {KillAfterFlip, 2}: true,
	}
	if len(pa) != len(want) {
		t.Fatalf("plan has %d kills, want %d: %v", len(pa), len(want), pa)
	}
	for _, k := range pa {
		if !want[k] {
			t.Fatalf("unexpected or duplicate kill %+v in %v", k, pa)
		}
		delete(want, k)
	}
	// Shrink 3→2: the removed shard 2 cannot die after the flip.
	for _, k := range NewWALFaults(7).RebalanceKills(3, 2) {
		if k.Shard == 2 && k.Phase == KillAfterFlip {
			t.Fatalf("removed shard scheduled to die after the flip: %v", k)
		}
	}
	if NewWALFaults(7).RebalanceKills(0, 2) != nil || NewWALFaults(7).RebalanceKills(2, 0) != nil {
		t.Fatal("degenerate rebalance kill requests must return nil")
	}
	if pc := NewWALFaults(12).RebalanceKills(2, 3); reflect.DeepEqual(pa, pc) {
		t.Fatalf("different seeds drew identical rebalance kill plans: %v", pa)
	}
}

func TestShardKillsDegenerate(t *testing.T) {
	w := NewWALFaults(5)
	if plan := w.ShardKills(0, 10); plan != nil {
		t.Fatalf("no shards should mean no plan, got %v", plan)
	}
	// Fewer messages than shards: a partial plan, still one kill per shard.
	plan := w.ShardKills(8, 3)
	if len(plan) != 3 {
		t.Fatalf("3 messages can host only 3 kills, got %d", len(plan))
	}
	seen := map[int]bool{}
	for _, k := range plan {
		if seen[k.Shard] {
			t.Fatalf("shard %d killed twice in partial plan %v", k.Shard, plan)
		}
		seen[k.Shard] = true
	}
}
