package chaos

import (
	"reflect"
	"testing"
)

func TestWALFaultsDeterministic(t *testing.T) {
	a, b := NewWALFaults(7), NewWALFaults(7)
	for i := 0; i < 50; i++ {
		if ca, cb := a.CutPoint(1000), b.CutPoint(1000); ca != cb {
			t.Fatalf("draw %d: cut points diverge: %d vs %d", i, ca, cb)
		}
	}
	offA, bitA := a.FlipBit(512)
	offB, bitB := b.FlipBit(512)
	if offA != offB || bitA != bitB {
		t.Fatalf("flip coordinates diverge: (%d,%d) vs (%d,%d)", offA, bitA, offB, bitB)
	}
	pa, pb := a.CrashPoints(5, 100), b.CrashPoints(5, 100)
	if !reflect.DeepEqual(pa, pb) {
		t.Fatalf("crash points diverge: %v vs %v", pa, pb)
	}
	if pc := NewWALFaults(8).CrashPoints(5, 100); reflect.DeepEqual(pa, pc) {
		t.Fatalf("different seeds drew identical crash points: %v", pa)
	}
}

func TestWALFaultsBounds(t *testing.T) {
	w := NewWALFaults(3)
	for i := 0; i < 100; i++ {
		if c := w.CutPoint(64); c < 0 || c >= 64 {
			t.Fatalf("cut point %d out of [0,64)", c)
		}
		off, bit := w.FlipBit(64)
		if off < 0 || off >= 64 || bit > 7 {
			t.Fatalf("flip (%d,%d) out of range", off, bit)
		}
	}
	if c := w.CutPoint(0); c != 0 {
		t.Fatalf("cut of empty file = %d, want 0", c)
	}
	points := w.CrashPoints(10, 4)
	if len(points) != 4 {
		t.Fatalf("asked for 10 points over 4 messages, got %d", len(points))
	}
	last := 0
	for _, p := range points {
		if p < 1 || p > 4 {
			t.Fatalf("crash point %d out of [1,4]", p)
		}
		if p <= last {
			t.Fatalf("crash points not strictly ascending: %v", points)
		}
		last = p
	}
	if w.CrashPoints(0, 10) != nil || w.CrashPoints(3, 0) != nil {
		t.Fatal("degenerate crash point requests must return nil")
	}
}
