package scenario

import (
	"testing"

	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/topo"
)

// The paper's TP/FP/FN criteria (§IV-A) predate the confidence annotation:
// a partial detection is an FP whether the analyzer was fully informed or
// degraded, and a degraded-but-complete detection is still a TP. These
// tests pin that the confidence and coverage fields added by the chaos
// layer never leak into the outcome accounting.

func TestEvaluateIgnoresConfidence(t *testing.T) {
	k0, k1 := bgKey(8, 0, 0), bgKey(9, 1, 1)
	cs := Case{Kind: Contention, Flows: []InjectedFlow{{Key: k0}, {Key: k1}}}

	// A complete detection at rock-bottom confidence is still a TP.
	lowConf := &diagnose.Diagnosis{
		Findings: []diagnose.Finding{{
			Type: diagnose.FlowContention, Culprits: []fabric.FlowKey{k0, k1},
			Confidence: 0.05,
		}},
		Confidence: 0.05,
	}
	if o := Evaluate(cs, lowConf); o != TP {
		t.Fatalf("complete low-confidence detection: %v, want TP", o)
	}

	// A partial detection at full confidence is still an FP.
	partial := &diagnose.Diagnosis{
		Findings: []diagnose.Finding{{
			Type: diagnose.FlowContention, Culprits: []fabric.FlowKey{k0},
			Confidence: 1,
		}},
		Confidence: 1,
	}
	if o := Evaluate(cs, partial); o != FP {
		t.Fatalf("partial full-confidence detection: %v, want FP", o)
	}

	// Coverage holes alone don't manufacture findings: an empty diagnosis
	// with degraded coverage is still an FN.
	degraded := &diagnose.Diagnosis{
		Coverage:   diagnose.Coverage{PortsPolled: 1, PortsMissed: 9},
		Confidence: 0.1,
	}
	if o := Evaluate(cs, degraded); o != FN {
		t.Fatalf("empty degraded diagnosis: %v, want FN", o)
	}
}

func TestEvaluatePFCLocalization(t *testing.T) {
	sw := topo.NodeID(40)
	cs := Case{Kind: PFCStorm, StormSwitch: sw}

	localized := &diagnose.Diagnosis{Findings: []diagnose.Finding{{
		Type: diagnose.PFCStorm, RootPort: topo.PortID{Node: sw, Port: 2}, Confidence: 0.3,
	}}}
	if o := Evaluate(cs, localized); o != TP {
		t.Fatalf("localized storm: %v, want TP", o)
	}

	// Reported but traced to the wrong switch: FP regardless of confidence.
	elsewhere := &diagnose.Diagnosis{Findings: []diagnose.Finding{{
		Type: diagnose.PFCStorm, RootPort: topo.PortID{Node: sw + 1, Port: 2}, Confidence: 1,
	}}}
	if o := Evaluate(cs, elsewhere); o != FP {
		t.Fatalf("mislocalized storm: %v, want FP", o)
	}

	if o := Evaluate(cs, &diagnose.Diagnosis{Confidence: 0.2}); o != FN {
		t.Fatalf("silent storm: %v, want FN", o)
	}
}

func TestEvaluateBackpressureRoot(t *testing.T) {
	root := topo.PortID{Node: 30, Port: 1}
	cs := Case{Kind: PFCBackpressure, BackpressureRoot: root}

	hit := &diagnose.Diagnosis{Findings: []diagnose.Finding{{
		Type: diagnose.PFCBackpressure, RootPort: root, Confidence: 0.4,
	}}}
	if o := Evaluate(cs, hit); o != TP {
		t.Fatalf("rooted backpressure: %v, want TP", o)
	}
	miss := &diagnose.Diagnosis{Findings: []diagnose.Finding{{
		Type: diagnose.PFCBackpressure, RootPort: topo.PortID{Node: 31, Port: 1},
	}}}
	if o := Evaluate(cs, miss); o != FP {
		t.Fatalf("misrooted backpressure: %v, want FP", o)
	}
}

func TestEvaluateCleanWithDegradedCoverage(t *testing.T) {
	// A clean case diagnosed under degraded telemetry: no findings is still
	// a TP (nothing to find), any finding is still an FP.
	cs := Case{Kind: Clean}
	if o := Evaluate(cs, &diagnose.Diagnosis{Confidence: 0.5}); o != TP {
		t.Fatalf("clean, empty: %v, want TP", o)
	}
	noisy := &diagnose.Diagnosis{Findings: []diagnose.Finding{{
		Type: diagnose.FlowContention, Confidence: 0.1,
	}}}
	if o := Evaluate(cs, noisy); o != FP {
		t.Fatalf("clean with finding: %v, want FP", o)
	}
}

func TestMetricsPartialDegradedAccounting(t *testing.T) {
	// End-to-end accounting over a mixed batch: complete detections (any
	// confidence) are TPs, partials are FPs, silences are FNs.
	var m Metrics
	for _, o := range []Outcome{TP, TP, FP, FN, FP} {
		m.Add(o)
	}
	if m.TP != 2 || m.FP != 2 || m.FN != 1 {
		t.Fatalf("accounting: %+v", m)
	}
	if p := m.Precision(); !(p > 0.49 && p < 0.51) {
		t.Fatalf("precision = %v", p)
	}
	if r := m.Recall(); !(r > 0.66 && r < 0.67) {
		t.Fatalf("recall = %v", r)
	}
}
