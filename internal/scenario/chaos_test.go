package scenario

import (
	"bytes"
	"testing"
	"time"

	"vedrfolnir/internal/chaos"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/wire"
)

// serializeRun reduces a run to its externally observable bytes: the wire
// bundle of everything the analyzer would ingest plus the diagnosis text.
func serializeRun(t *testing.T, res Result) ([]byte, string) {
	t.Helper()
	var buf bytes.Buffer
	if err := wire.NewBundle(res.Records, res.Reports, res.CFs).Write(&buf); err != nil {
		t.Fatalf("serializing bundle: %v", err)
	}
	return buf.Bytes(), res.Diag.Summary()
}

// TestChaosZeroRateByteIdentical is the acceptance gate for the chaos
// layer's transparency: wiring the layer in with zero fault rates (only
// Seed set, so Active() is true and every hook is installed) must leave the
// pipeline byte-identical to an unwrapped run — same serialized bundle,
// same diagnosis text, same outcome and overhead.
func TestChaosZeroRateByteIdentical(t *testing.T) {
	cfg := testConfig()
	for _, kind := range []AnomalyKind{Contention, Incast, PFCStorm, PFCBackpressure} {
		cs := mustCase(t, kind, 17, cfg)
		plain := mustRun(t, cs, Vedrfolnir, cfg, DefaultRunOptions(cfg))
		opts := DefaultRunOptions(cfg)
		opts.Chaos = chaos.Config{Seed: 1}
		wrapped := mustRun(t, cs, Vedrfolnir, cfg, opts)

		bundleA, summaryA := serializeRun(t, plain)
		bundleB, summaryB := serializeRun(t, wrapped)
		if !bytes.Equal(bundleA, bundleB) {
			t.Errorf("%v: zero-rate chaos changed the serialized bundle (%d vs %d bytes)",
				kind, len(bundleA), len(bundleB))
		}
		if summaryA != summaryB {
			t.Errorf("%v: zero-rate chaos changed the diagnosis:\n%s\n---\n%s",
				kind, summaryA, summaryB)
		}
		if plain.Outcome != wrapped.Outcome || plain.Overhead != wrapped.Overhead {
			t.Errorf("%v: zero-rate chaos changed outcome/overhead", kind)
		}
		if wrapped.ChaosStats.Total() != 0 {
			t.Errorf("%v: zero-rate chaos injected faults: %+v", kind, wrapped.ChaosStats)
		}
		if wrapped.Confidence < 1 {
			t.Errorf("%v: zero-rate chaos lowered confidence to %v", kind, wrapped.Confidence)
		}
	}
}

// TestChaosDegradedStillDiagnoses: at 1% uniform control-packet loss every
// §IV-A scenario must still complete and yield a diagnosis object with a
// sane confidence — no panics, no hangs, no silently absent reports.
func TestChaosDegradedStillDiagnoses(t *testing.T) {
	cfg := testConfig()
	opts := DefaultRunOptions(cfg)
	opts.Chaos = chaos.UniformLoss(0.01)
	for _, kind := range []AnomalyKind{Contention, Incast, PFCStorm, PFCBackpressure} {
		res := mustRun(t, mustCase(t, kind, 5, cfg), Vedrfolnir, cfg, opts)
		if !res.Completed {
			t.Errorf("%v: run incomplete under 1%% loss", kind)
		}
		if res.Diag == nil {
			t.Fatalf("%v: no diagnosis under 1%% loss", kind)
		}
		if res.Confidence <= 0 || res.Confidence > 1 {
			t.Errorf("%v: confidence %v outside (0,1]", kind, res.Confidence)
		}
	}
}

// TestChaosDeterminism: identical chaos config and case seed reproduce the
// same faults, diagnosis, and confidence — the layer is part of the
// simulation's determinism contract, not an exception to it.
func TestChaosDeterminism(t *testing.T) {
	cfg := testConfig()
	opts := DefaultRunOptions(cfg)
	opts.Chaos = chaos.UniformLoss(0.05)
	cs := mustCase(t, Contention, 9, cfg)
	a := mustRun(t, cs, Vedrfolnir, cfg, opts)
	b := mustRun(t, cs, Vedrfolnir, cfg, opts)
	if a.ChaosStats != b.ChaosStats {
		t.Fatalf("fault injection not deterministic: %+v vs %+v", a.ChaosStats, b.ChaosStats)
	}
	if a.Confidence != b.Confidence {
		t.Fatalf("confidence not deterministic: %v vs %v", a.Confidence, b.Confidence)
	}
	if a.Diag.Summary() != b.Diag.Summary() {
		t.Fatalf("diagnoses differ under identical chaos:\n%s\n---\n%s",
			a.Diag.Summary(), b.Diag.Summary())
	}
}

// TestChaosPortLossLowersConfidence: heavy per-port telemetry loss must be
// visible in the diagnosis — holes counted in the reports, confidence
// strictly below 1 — while the run itself still completes.
func TestChaosPortLossLowersConfidence(t *testing.T) {
	cfg := testConfig()
	opts := DefaultRunOptions(cfg)
	opts.Chaos = chaos.Config{PortLossRate: 0.5}
	res := mustRun(t, mustCase(t, Contention, 0, cfg), Vedrfolnir, cfg, opts)
	if !res.Completed {
		t.Fatal("incomplete under port loss")
	}
	if res.ChaosStats.PortsLost == 0 {
		t.Fatal("50% port loss injected nothing; the telemetry hook is not wired")
	}
	missed := 0
	for _, rep := range res.Reports {
		missed += rep.PortsMissed
	}
	if missed == 0 {
		t.Fatal("ports were lost but no report counts a hole")
	}
	if !(res.Confidence < 1) {
		t.Fatalf("confidence %v despite %d lost ports", res.Confidence, res.ChaosStats.PortsLost)
	}
	if res.Confidence <= 0 {
		t.Fatalf("confidence %v collapsed to zero", res.Confidence)
	}
}

// TestChaosTotalPollLossBoundedRetries: with every poll round trip lost,
// the monitor's bounded re-arm must give up instead of retrying forever —
// the run completes, zero telemetry is collected, and the diagnosis
// degrades to a low-confidence FN rather than a hang.
func TestChaosTotalPollLossBoundedRetries(t *testing.T) {
	cfg := testConfig()
	opts := DefaultRunOptions(cfg)
	opts.Chaos = chaos.Config{PollLossRate: 1}
	res := mustRun(t, mustCase(t, Contention, 3, cfg), Vedrfolnir, cfg, opts)
	if !res.Completed {
		t.Fatal("total poll loss prevented completion (unbounded retry loop?)")
	}
	if res.ChaosStats.PollsLost == 0 {
		t.Fatal("total poll loss injected nothing; the poll gate is not wired")
	}
	if res.ReportCount != 0 {
		t.Fatalf("%d reports collected despite total poll loss", res.ReportCount)
	}
	if res.Outcome != FN {
		t.Fatalf("outcome %v with zero telemetry, want FN", res.Outcome)
	}
	if !(res.Confidence < 1) {
		t.Fatalf("confidence %v despite losing every poll", res.Confidence)
	}
}

// TestChaosMonitorKillRestart: killing every monitor mid-collective loses
// volatile detection state but must not wedge the collective or the
// diagnosis — the monitors restart, re-synchronize at the next step, and
// the run completes.
func TestChaosMonitorKillRestart(t *testing.T) {
	cfg := testConfig()
	opts := DefaultRunOptions(cfg)
	opts.Chaos = chaos.Config{
		MonitorKillRate: 1,
		MonitorDownFor:  simtime.Duration(50 * time.Microsecond),
	}
	res := mustRun(t, mustCase(t, Contention, 2, cfg), Vedrfolnir, cfg, opts)
	if !res.Completed {
		t.Fatal("monitor kills prevented collective completion")
	}
	if res.ChaosStats.MonitorKills == 0 {
		t.Fatal("rate-1 kill plan killed nothing; the kill schedule is not wired")
	}
	if res.Diag == nil {
		t.Fatal("no diagnosis after monitor restarts")
	}
}
