package scenario

import (
	"bytes"
	"testing"

	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/wire"
)

// TestStagesByteIdentity pins the perf-observability contract: running
// with stage timers installed must leave every simulated output —
// records, reports, CFs, diagnosis, and the deterministic obs metrics —
// byte-identical to the uninstrumented run, while the stage registry
// actually collects wall-time observations. Stage wall times live in
// their own registry precisely so they can never leak into the bundle.
func TestStagesByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are slow")
	}
	cfg := DefaultConfig()
	cfg.Scale = 1.0 / 360
	cfg.StepBytes = int64(1e6)
	cfg.CellSize = 16 << 10
	cfg.Fabric.PFCPauseThreshold = 64 << 10
	cfg.Fabric.PFCResumeThreshold = 32 << 10
	cfg.Fabric.ECNThreshold = 32 << 10
	cs, err := GenerateCase(Contention, 7, cfg)
	if err != nil {
		t.Fatal(err)
	}

	render := func(st *obs.Stages) []byte {
		opts := DefaultRunOptions(cfg)
		opts.Obs = &obs.Scope{Metrics: obs.NewRegistry()}
		opts.Stages = st
		res, err := Run(cs, Vedrfolnir, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		bundle := wire.NewBundle(res.Records, res.Reports, res.CFs)
		bundle.Metrics = opts.Obs.M().Flatten()
		var buf bytes.Buffer
		if err := bundle.Write(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteString(res.Diag.Summary())
		return buf.Bytes()
	}

	plain := render(nil)

	// A deterministic strictly-increasing fake clock: the timers observe
	// real nonzero durations without the test reading wall time.
	var tick int64
	reg := obs.NewRegistry()
	st := obs.NewStages(reg, func() int64 { tick += 13; return tick })
	timed := render(st)

	if !bytes.Equal(plain, timed) {
		t.Fatalf("stage-timed run differs from uninstrumented run (%d vs %d bytes)",
			len(plain), len(timed))
	}

	// The timers must have actually fired: every stage wired through
	// scenario.Run sees at least one observation on a contention case.
	flat := reg.Flatten()
	for _, stage := range []string{
		obs.StageEventPush, obs.StageEventPop, obs.StageFabricForward,
		obs.StageTelemetryCollect, obs.StageWaitgraphBuild, obs.StageDiagnose,
	} {
		if flat["vedr_stage_"+stage+"_ns_count"] == 0 {
			t.Errorf("stage %q recorded no observations", stage)
		}
	}
}
