package scenario

import (
	"time"

	"fmt"

	"vedrfolnir/internal/baseline"
	"vedrfolnir/internal/chaos"
	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/monitor"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/waitgraph"
)

// Outcome is one case's diagnostic verdict under the paper's criteria.
type Outcome uint8

// Outcomes per §IV-A's definitions.
const (
	// TP: all injected flows detected / PFC traced to its source.
	TP Outcome = iota
	// FP: partial detection (only some flows; PFC reported but not
	// localized).
	FP
	// FN: no anomaly detected at all.
	FN
)

func (o Outcome) String() string {
	switch o {
	case TP:
		return "TP"
	case FP:
		return "FP"
	default:
		return "FN"
	}
}

// Result is everything a case run produces.
type Result struct {
	Case    Case
	System  SystemKind
	Outcome Outcome

	// Detected culprit flows and PFC root ports.
	Detected  []fabric.FlowKey
	RootPorts []topo.PortID

	// Overhead is the diagnosis system's cost on this case.
	Overhead telemetry.Overhead
	// Reports retained for diagnosis.
	ReportCount int
	// CollectiveTime is the collective's completion time.
	CollectiveTime simtime.Duration
	// Completed is false if the simulation hit the deadline.
	Completed bool

	Diag *diagnose.Diagnosis

	// Confidence is the diagnosis's overall coverage score (1 in a healthy
	// control plane); ChaosStats counts the faults injected into this run.
	Confidence float64
	ChaosStats chaos.Stats

	// The analyzer's raw inputs, retained so callers (e.g. the analyzerd
	// integration tests, offline tooling) can re-submit or re-analyze.
	Records []collective.StepRecord
	Reports []*telemetry.Report
	CFs     map[fabric.FlowKey]bool
}

// RunOptions carries per-system tunables so the parameter sweeps of
// Figs 12–13 can vary them.
type RunOptions struct {
	Monitor  monitor.Config
	Hawkeye  baseline.HawkeyeConfig
	FullPoll simtime.Duration // polling epoch
	// Chaos, when Active, injects control-plane faults into the run
	// (internal/chaos). The zero value leaves the pipeline untouched.
	Chaos chaos.Config
	// Obs, when enabled, receives sim-time trace events, metrics, and
	// structured logs from every layer of the run. The nil default records
	// nothing and leaves the run byte-identical to an uninstrumented one.
	Obs *obs.Scope
	// Stages, when set, records wall-time histograms around the named
	// hot-path stages (event push/pop, fabric forwarding, telemetry
	// collection, diagnosis phases) into its own registry — never into
	// Obs, whose Flatten lands in deterministic bundles. The nil default
	// records nothing and leaves the run byte-identical.
	Stages *obs.Stages
}

// DefaultRunOptions returns each system's paper operating point, adapted to
// the configured cell size and with every time constant scaled by
// cfg.Scale: shrinking the data shrinks all durations proportionally (the
// bandwidth is fixed), so sampling periods and dedup windows must shrink
// with them to preserve each system's poll-count-to-workload ratio.
func DefaultRunOptions(cfg Config) RunOptions {
	scaleT := func(paper simtime.Duration) simtime.Duration { return scaleDur(paper, cfg.Scale) }
	m := monitor.DefaultConfig()
	m.CellSize = cfg.CellSize
	m.Window = scaleT(500 * time.Millisecond)
	m.UnrestrictedSpacing = scaleT(100 * time.Microsecond)
	// §V stall watchdog: investigate flows halted for an extended period
	// (PFC deadlocks and storms that silence the RTT trigger).
	m.StallTimeout = scaleT(50 * time.Millisecond)
	h := baseline.DefaultHawkeyeConfig()
	h.CellSize = cfg.CellSize
	h.PerFlowSpacing = scaleT(1 * time.Millisecond)
	h.RetainEvery = scaleT(50 * time.Microsecond * 90) // 50 µs at the 1/90 default
	h.Window = m.Window
	return RunOptions{Monitor: m, Hawkeye: h, FullPoll: scaleT(1 * time.Millisecond)}
}

// Run executes one case under one diagnosis system and evaluates the
// outcome against the case's ground truth. It returns an error for
// construction failures (bad collective spec, invalid host config, bad
// injection point); a case that merely hits the deadline still returns a
// Result with Completed=false.
func Run(cs Case, system SystemKind, cfg Config, opts RunOptions) (Result, error) {
	ft := topo.PaperFatTree()
	k := sim.New(cs.Seed*1000003 + int64(cs.Kind))
	k.SetEventLimit(500_000_000)
	fcfg := cfg.Fabric
	if fcfg.PFCPauseThreshold == 0 {
		fcfg = fabric.DefaultConfig()
	}
	net := fabric.NewNetwork(k, ft.Topology, fcfg)
	if opts.Stages != nil {
		k.SetStages(opts.Stages)
		net.SetStages(opts.Stages)
	}

	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = cfg.CellSize
	rcfg.CC = cfg.CC
	// DCQCN reaction times scale with the workload so congestion control
	// converges over the same fraction of a step as at paper scale.
	rcfg.CNPInterval = scaleDur(50*time.Microsecond*90, cfg.Scale)
	rcfg.RateIncTimer = scaleDur(55*time.Microsecond*90, cfg.Scale)
	hosts := make(map[topo.NodeID]*rdma.Host)
	for _, id := range ft.Hosts() {
		h, err := rdma.NewHost(k, net, id, rcfg)
		if err != nil {
			return Result{}, fmt.Errorf("scenario: %w", err)
		}
		hosts[id] = h
	}
	ranks := ft.Hosts()[:cfg.Ranks]

	schedules, err := collective.Decompose(collective.Spec{
		Op: cfg.Op, Alg: cfg.Alg, Ranks: ranks, Bytes: cfg.StepBytes * int64(cfg.Ranks),
	})
	if err != nil {
		return Result{}, fmt.Errorf("scenario: %w", err)
	}
	run, err := collective.NewRunner(k, hosts, schedules)
	if err != nil {
		return Result{}, fmt.Errorf("scenario: %w", err)
	}
	run.Bind()

	cfs := make(map[fabric.FlowKey]bool)
	for _, sch := range schedules {
		for s := range sch.Steps {
			cfs[sch.FlowKey(s)] = true
		}
	}

	// Instantiate the diagnosis system.
	var (
		sys     *monitor.System
		hk      *baseline.Hawkeye
		fp      *baseline.FullPolling
		reports func() []*telemetry.Report
		totals  func() telemetry.Overhead
	)
	switch system {
	case Vedrfolnir:
		sys = monitor.NewSystem(k, net, run, hosts, opts.Monitor)
		reports = sys.Reports
		totals = func() telemetry.Overhead { return sys.Col.Totals }
	case HawkeyeMaxR, HawkeyeMinR:
		mode := baseline.MaxR
		if system == HawkeyeMinR {
			mode = baseline.MinR
		}
		hk = baseline.NewHawkeye(k, net, schedules, mode, opts.Hawkeye)
		hk.Wire(hosts)
		reports = func() []*telemetry.Report { return hk.Reports }
		totals = func() telemetry.Overhead { return hk.Col.Totals }
	case FullPolling:
		fp = baseline.NewFullPolling(k, net, opts.FullPoll)
		fp.Start()
		reports = func() []*telemetry.Report { return fp.Reports }
		totals = func() telemetry.Overhead { return fp.Col.Totals }
	}

	if opts.Obs.Enabled() {
		instrumentRun(opts.Obs, run, sys, ranks)
	}
	if opts.Stages != nil {
		switch {
		case sys != nil:
			sys.Col.SetStages(opts.Stages)
		case hk != nil:
			hk.Col.SetStages(opts.Stages)
		case fp != nil:
			fp.Col.SetStages(opts.Stages)
		}
	}

	// Wire the fault-injection layer. Every hook is nil by default, so an
	// inactive (or zero-rate) configuration leaves the run byte-identical.
	var ch *chaos.Chaos
	if opts.Chaos.Active() {
		ccfg := opts.Chaos
		if ccfg.MonitorKillRate > 0 && ccfg.MonitorKillWindow <= 0 {
			// Spread undated kills across the whole run by default.
			ccfg.MonitorKillWindow = simtime.Duration(cfg.Deadline)
		}
		ch = chaos.New(ccfg, cs.Seed)
		net.Tap = ch.TapControl
		var col *telemetry.Collector
		switch {
		case sys != nil:
			col = sys.Col
		case hk != nil:
			col = hk.Col
		case fp != nil:
			col = fp.Col
		}
		if col != nil {
			col.PortFault = ch.PortLost
		}
		if sys != nil {
			// Monitor-level faults only apply to the host-monitor system.
			var monHosts []topo.NodeID
			for _, id := range ranks {
				if sys.Monitors[id] != nil {
					sys.Monitors[id].Gate = ch
					monHosts = append(monHosts, id)
				}
			}
			for _, kill := range ch.KillPlan(monHosts) {
				m := sys.Monitors[kill.Host]
				k.At(kill.At, m.Kill)
				k.At(kill.RestartAt, m.Restart)
			}
		}
	}

	// Inject the anomaly. Send failures inside event callbacks cannot be
	// returned from there; the first one is captured and surfaced after the
	// run.
	var injErr error
	for _, inj := range cs.Flows {
		inj := inj
		k.At(inj.StartAt, func() {
			if err := hosts[inj.Key.Src].Send(inj.Key, inj.Bytes); err != nil && injErr == nil {
				injErr = err
			}
		})
	}
	if cs.Kind == PFCStorm {
		if err := net.InjectPFCStorm(cs.StormSwitch, cs.StormPort, cs.StormStart, cs.StormDur); err != nil {
			return Result{}, fmt.Errorf("scenario: %w", err)
		}
	}
	if cs.Kind == LoadImbalance {
		for _, dst := range cs.PinnedDsts {
			ft.OverrideNextHops(cs.PinnedEdge, dst, []int{cs.PinnedPort})
		}
	}
	if cs.Kind == Loop {
		edge, agg := cs.LoopSwitches[0], cs.LoopSwitches[1]
		up, down := -1, -1
		for pi, peer := range ft.Node(edge).Ports {
			if peer.Node == agg {
				up = pi
			}
		}
		for pi, peer := range ft.Node(agg).Ports {
			if peer.Node == edge {
				down = pi
			}
		}
		ft.OverrideNextHops(edge, cs.LoopDst, []int{up})
		ft.OverrideNextHops(agg, cs.LoopDst, []int{down})
	}

	// Run until the collective completes (plus nothing: reports are
	// collected inline), bounded by the deadline.
	var doneAt simtime.Time
	run.OnComplete = func(at simtime.Time) {
		doneAt = at
		if fp != nil {
			fp.Stop()
		}
		k.Stop()
	}
	run.Start()
	k.Run(simtime.Time(cfg.Deadline))
	if injErr != nil {
		return Result{}, fmt.Errorf("scenario: injecting background flow: %w", injErr)
	}
	if err := run.Err(); err != nil {
		return Result{}, fmt.Errorf("scenario: %w", err)
	}
	completed, _ := run.Done()

	// Diagnose. The coverage inputs (expected step records, lost polls)
	// let the analyzer annotate confidence when telemetry went missing.
	expectedRecords := 0
	for _, sch := range schedules {
		expectedRecords += len(sch.Steps)
	}
	pollsLost := 0
	if sys != nil {
		pollsLost = sys.PollsLost()
	}
	diag := diagnose.Analyze(diagnose.Input{
		Records: run.Records(),
		Reports: reports(),
		CFs:     cfs,
		StepOf: func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
			host, step, ok := run.StepOf(f)
			return waitgraph.StepRef{Host: host, Step: step}, ok
		},
		RecordsExpected: expectedRecords,
		PollsLost:       pollsLost,
		Obs:             opts.Obs,
		ObsAt:           k.Now(),
		Stages:          opts.Stages,
	})
	if opts.Obs.Enabled() {
		recordRunObs(opts.Obs, k, net, totals(), ch, doneAt, completed)
	}

	res := Result{
		Case:           cs,
		System:         system,
		Detected:       diag.Culprits(),
		RootPorts:      diag.RootPorts(),
		Overhead:       totals(),
		ReportCount:    len(reports()),
		CollectiveTime: simtime.Duration(doneAt),
		Completed:      completed,
		Diag:           diag,
		Confidence:     diag.Confidence,
		Records:        run.Records(),
		Reports:        reports(),
		CFs:            cfs,
	}
	if ch != nil {
		res.ChaosStats = ch.Stats
	}
	res.Outcome = Evaluate(cs, diag)
	return res, nil
}

// Evaluate applies the paper's per-scenario TP/FP/FN criteria to a
// diagnosis.
func Evaluate(cs Case, diag *diagnose.Diagnosis) Outcome {
	switch cs.Kind {
	case Contention, Incast, LoadImbalance:
		// "Detecting all injected flows [is] a true positive, detecting
		// only some flows [is] a false positive, and failing to detect
		// any anomaly [is] a false negative."
		detected := map[fabric.FlowKey]bool{}
		for _, f := range diag.Culprits() {
			detected[f] = true
		}
		missing := 0
		for key := range cs.InjectedKeys() {
			if !detected[key] {
				missing++
			}
		}
		switch {
		case len(diag.Findings) == 0:
			return FN
		case missing == 0:
			return TP
		default:
			return FP
		}

	case PFCStorm:
		// "Tracing to the source port where the PFC occurred is a true
		// positive, merely reporting the presence of PFC is a false
		// positive, failing to detect any anomaly is a false negative."
		// Provenance roots are egress ports while the injection point is
		// an ingress, so localization is compared at switch granularity.
		if len(diag.Findings) == 0 {
			return FN
		}
		for _, f := range diag.Findings {
			if f.Type == diagnose.PFCStorm && f.RootPort.Node == cs.StormSwitch {
				return TP
			}
		}
		return FP

	case PFCBackpressure:
		if len(diag.Findings) == 0 {
			return FN
		}
		for _, f := range diag.Findings {
			if (f.Type == diagnose.PFCBackpressure || f.Type == diagnose.PFCStorm) &&
				f.RootPort == cs.BackpressureRoot {
				return TP
			}
		}
		return FP

	case Loop:
		// Extension criteria, analogous to the PFC rules: localizing the
		// problem to one of the looped switches is a TP. In a lossless
		// fabric a forwarding loop manifests as a PFC deadlock (paused
		// packets never age out), so a deadlock cycle localized at the
		// loop counts as detection too. Other findings without
		// localization are an FP; silence is an FN.
		if len(diag.Findings) == 0 {
			return FN
		}
		for _, f := range diag.Findings {
			atLoop := f.Port.Node == cs.LoopSwitches[0] || f.Port.Node == cs.LoopSwitches[1]
			if f.Type == diagnose.ForwardingLoop && atLoop {
				return TP
			}
			if f.Type == diagnose.PFCDeadlock {
				for _, p := range append([]topo.PortID{f.Port}, f.Chain...) {
					if p.Node == cs.LoopSwitches[0] || p.Node == cs.LoopSwitches[1] {
						return TP
					}
				}
			}
		}
		return FP

	default: // Clean
		if len(diag.Findings) == 0 {
			return TP
		}
		return FP
	}
}

// Metrics aggregates outcomes into the paper's precision/recall.
type Metrics struct {
	TP, FP, FN int
}

// Add folds one outcome in.
func (m *Metrics) Add(o Outcome) {
	switch o {
	case TP:
		m.TP++
	case FP:
		m.FP++
	case FN:
		m.FN++
	}
}

// Precision = TP/(TP+FP); 1 when undefined.
func (m Metrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall = TP/(TP+FN); 1 when undefined.
func (m Metrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 1
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// scaleDur scales a paper-scale duration by the workload scale, with a
// 200 ns floor.
func scaleDur(paper simtime.Duration, scale float64) simtime.Duration {
	d := simtime.Duration(float64(paper) * scale)
	if d < 200 {
		d = 200
	}
	return d
}
