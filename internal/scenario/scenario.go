// Package scenario reproduces the experimental setup of §IV-A: the K=4
// fat-tree (100 Gbps links, 2 µs delay), the LLM-training-derived Ring
// AllGather workload, the four anomaly constructions (flow contention,
// incast, PFC storm, PFC backpressure) with ground truth, the execution of
// each diagnosis system over a case, and the paper's TP/FP/FN evaluation
// criteria.
//
// All paper-quoted data sizes and times are scaled by Config.Scale
// (default 1/90) so a full 220-case sweep runs in seconds of wall-clock
// while every ratio that shapes the results — contention shares, PFC
// cascade depths, threshold crossings — is preserved (see DESIGN.md §5).
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
)

// AnomalyKind enumerates the four constructed scenarios of §IV-A.
type AnomalyKind uint8

// Anomaly kinds.
const (
	Contention AnomalyKind = iota
	Incast
	PFCStorm
	PFCBackpressure
	// Loop is the §II-B forwarding-loop anomaly (an extension beyond the
	// paper's four evaluated scenarios, enabled by the loop signature).
	Loop
	// LoadImbalance is the §II-B load-imbalance anomaly: an ECMP
	// misjudgment concentrates flows that should spread over multiple
	// uplinks onto one, causing contention (extension scenario).
	LoadImbalance
	// Clean runs no anomaly (sanity baseline, not a paper scenario).
	Clean
)

func (k AnomalyKind) String() string {
	switch k {
	case Contention:
		return "flow-contention"
	case Incast:
		return "incast"
	case PFCStorm:
		return "pfc-storm"
	case PFCBackpressure:
		return "pfc-backpressure"
	case Loop:
		return "forwarding-loop"
	case LoadImbalance:
		return "load-imbalance"
	case Clean:
		return "clean"
	default:
		return fmt.Sprintf("anomaly(%d)", uint8(k))
	}
}

// SystemKind selects the diagnosis system under test.
type SystemKind uint8

// Systems compared in §IV-B.
const (
	Vedrfolnir SystemKind = iota
	HawkeyeMaxR
	HawkeyeMinR
	FullPolling
)

func (s SystemKind) String() string {
	switch s {
	case Vedrfolnir:
		return "vedrfolnir"
	case HawkeyeMaxR:
		return "hawkeye-maxr"
	case HawkeyeMinR:
		return "hawkeye-minr"
	case FullPolling:
		return "full-polling"
	default:
		return fmt.Sprintf("system(%d)", uint8(s))
	}
}

// InjectedFlow is one background flow with ground truth identity.
type InjectedFlow struct {
	Key     fabric.FlowKey
	Bytes   int64
	StartAt simtime.Time
}

// Case is one generated anomaly instance.
type Case struct {
	Kind AnomalyKind
	Seed int64

	// Flows are injected background flows (contention/incast/backpressure).
	Flows []InjectedFlow

	// Storm ground truth (PFCStorm only): the switch ingress port that
	// persistently asserts PAUSE.
	StormSwitch topo.NodeID
	StormPort   int
	StormStart  simtime.Time
	StormDur    simtime.Duration

	// BackpressureRoot is the congested egress port that originates the
	// organic PFC cascade (PFCBackpressure only).
	BackpressureRoot topo.PortID

	// Loop ground truth (Loop only): traffic toward LoopDst bounces
	// between LoopSwitches until TTL exhaustion.
	LoopSwitches [2]topo.NodeID
	LoopDst      topo.NodeID

	// Load-imbalance ground truth (LoadImbalance only): at PinnedEdge,
	// routes toward PinnedDsts all take PinnedPort instead of spreading
	// over the ECMP group; contention concentrates at that uplink.
	PinnedEdge topo.NodeID
	PinnedPort int
	PinnedDsts []topo.NodeID
}

// Config parameterizes the evaluation environment.
type Config struct {
	// Ranks is the number of collective participants (paper: 8).
	Ranks int
	// StepBytes is the per-step per-flow data volume. The paper uses
	// 360 MB; the default is 360 MB × Scale.
	StepBytes int64
	// Scale shrinks every paper-quoted size and time (default 1/90).
	Scale float64
	// CellSize for the RDMA hosts.
	CellSize int
	// Op/Alg select the collective (paper: Ring AllGather).
	Op  collective.Op
	Alg collective.Algorithm
	// Fabric sets the data-plane thresholds. Cascade depth depends on
	// the ratio of in-flight bytes to the pause threshold, so shrunken
	// test workloads should shrink these proportionally.
	Fabric fabric.Config
	// CC selects the hosts' congestion controller (default DCQCN).
	CC rdma.CCKind
	// Deadline aborts a stuck simulation (simulated time).
	Deadline simtime.Duration
}

// DefaultConfig mirrors §IV-A at 1/90 scale.
func DefaultConfig() Config {
	scale := 1.0 / 90
	return Config{
		Ranks:     8,
		StepBytes: int64(360e6 * scale), // 4 MB
		Scale:     scale,
		CellSize:  64 << 10,
		Op:        collective.AllGather,
		Alg:       collective.Ring,
		Fabric:    fabric.DefaultConfig(),
		Deadline:  2 * time.Second,
	}
}

// ConfigForScale returns the §IV-A configuration at workload scale 1/den.
// Fabric thresholds scale with the workload (cascade depth tracks the ratio
// of in-flight bytes to the pause threshold) and the cell size shrinks when
// steps would otherwise quantize into too few cells.
func ConfigForScale(den float64) Config {
	cfg := DefaultConfig()
	cfg.Scale = 1.0 / den
	cfg.StepBytes = cfg.ScaledBytes(360e6)
	f := 90.0 / den // 1.0 at the default 1/90
	scaleB := func(b int64) int64 {
		v := int64(float64(b) * f)
		if v < 8<<10 {
			v = 8 << 10
		}
		return v
	}
	cfg.Fabric.PFCPauseThreshold = scaleB(cfg.Fabric.PFCPauseThreshold)
	cfg.Fabric.PFCResumeThreshold = scaleB(cfg.Fabric.PFCResumeThreshold)
	cfg.Fabric.ECNThreshold = scaleB(cfg.Fabric.ECNThreshold)
	for cfg.CellSize > 4096 && cfg.StepBytes/int64(cfg.CellSize) < 32 {
		cfg.CellSize /= 2
	}
	return cfg
}

// ScaledBytes converts a paper-quoted byte figure to its scaled equivalent.
func (c Config) ScaledBytes(paperBytes float64) int64 {
	b := int64(paperBytes * c.Scale)
	if b < 1 {
		b = 1
	}
	return b
}

// scaledMB converts a paper-quoted megabyte figure to scaled bytes.
func (c Config) scaledMB(mb float64) int64 { return c.ScaledBytes(mb * 1e6) }

// scaledMS converts a paper-quoted millisecond figure to a scaled duration.
func (c Config) scaledMS(ms float64) simtime.Duration {
	return simtime.Duration(ms * 1e6 * c.Scale)
}

// bgKey builds the 5-tuple of the i-th injected flow.
func bgKey(src, dst topo.NodeID, i int) fabric.FlowKey {
	return fabric.FlowKey{
		Src:     src,
		Dst:     dst,
		SrcPort: uint16(9000 + 10*i),
		DstPort: uint16(9001 + 10*i),
		Proto:   17,
	}
}

// GenerateCase builds one anomaly case with ground truth, deterministically
// from its seed. The construction follows §IV-A: flows are placed randomly
// but deliberately made to collide with the collective. It fails only when
// the configured collective cannot be decomposed.
func GenerateCase(kind AnomalyKind, seed int64, cfg Config) (Case, error) {
	rng := rand.New(rand.NewSource(seed))
	ft := topo.PaperFatTree()
	ranks := ft.Hosts()[:cfg.Ranks]
	extras := ft.Hosts()[cfg.Ranks:]
	cs := Case{Kind: kind, Seed: seed}

	switch kind {
	case Clean:
		// no injection

	case Contention:
		// 1–6 flows, 20 MB–1 GB, start 0–200 ms; random placement that
		// collides with the collective (destination is a rank host, so
		// the background flow shares the rank's edge link and often an
		// agg/core link).
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			src := extras[rng.Intn(len(extras))]
			dst := ranks[rng.Intn(len(ranks))]
			cs.Flows = append(cs.Flows, InjectedFlow{
				Key:     bgKey(src, dst, i),
				Bytes:   cfg.scaledMB(20 + rng.Float64()*980),
				StartAt: simtime.Time(rng.Int63n(int64(cfg.scaledMS(200)) + 1)),
			})
		}

	case Incast:
		// 3–8 flows, 20–200 MB, random sources, one shared target rank,
		// simultaneous start.
		n := 3 + rng.Intn(6)
		dst := ranks[rng.Intn(len(ranks))]
		start := simtime.Time(rng.Int63n(int64(cfg.scaledMS(100)) + 1))
		srcs := rng.Perm(len(extras))
		for i := 0; i < n; i++ {
			src := extras[srcs[i%len(extras)]]
			cs.Flows = append(cs.Flows, InjectedFlow{
				Key:     bgKey(src, dst, i),
				Bytes:   cfg.scaledMB(20 + rng.Float64()*180),
				StartAt: start,
			})
		}

	case PFCStorm:
		// Continuous PAUSE injection at a switch port on the path of one
		// of the collective flows; start 0–150 ms, duration 10–100 ms.
		schedules, err := collective.Decompose(collective.Spec{
			Op: cfg.Op, Alg: cfg.Alg, Ranks: ranks, Bytes: cfg.StepBytes * int64(cfg.Ranks),
		})
		if err != nil {
			return Case{}, fmt.Errorf("scenario: %w", err)
		}
		sch := schedules[rng.Intn(4)] // "the paths of 4 collective communication flows"
		step := rng.Intn(len(sch.Steps))
		flow := sch.FlowKey(step)
		path := ft.Path(sch.Host, sch.Steps[step].Dst, flow.PathHash())
		// Pick any hop whose receiving end is a switch (every hop except
		// the last, which faces the destination host). The storm asserts
		// PAUSE from that switch's ingress, halting the hop the
		// collective flow transits.
		hop := path[rng.Intn(len(path)-1)]
		peer := ft.PeerOf(hop)
		cs.StormSwitch = peer.Node
		cs.StormPort = peer.Port
		cs.StormStart = simtime.Time(rng.Int63n(int64(cfg.scaledMS(150)) + 1))
		cs.StormDur = cfg.scaledMS(10 + rng.Float64()*90)

	case Loop:
		// Network reconfiguration asynchrony (§II-B): inside a pod the
		// collective uses, an edge switch's route toward a remote
		// bystander host points up to one agg while that agg's route
		// points back down — traffic to the bystander ping-pongs until
		// TTL death, burning bandwidth on links the collective shares.
		victim := extras[rng.Intn(len(extras))]
		pod := rng.Intn(2) // ranks occupy pods 0 and 1
		edgeIdx := rng.Intn(len(ft.Edge[pod]))
		edge := ft.Edge[pod][edgeIdx]
		agg := ft.Agg[pod][rng.Intn(len(ft.Agg[pod]))]
		cs.LoopSwitches = [2]topo.NodeID{edge, agg}
		cs.LoopDst = victim
		// Loop traffic enters from the ranks under the looped edge.
		srcs := ft.HostsByEdge[pod][edgeIdx]
		n := 2 + rng.Intn(2)
		for i := 0; i < n; i++ {
			cs.Flows = append(cs.Flows, InjectedFlow{
				Key:     bgKey(srcs[rng.Intn(len(srcs))], victim, i),
				Bytes:   cfg.scaledMB(20 + rng.Float64()*80),
				StartAt: simtime.Time(rng.Int63n(int64(cfg.scaledMS(100)) + 1)),
			})
		}

	case LoadImbalance:
		// An edge switch's "ECMP" degenerates: every route toward the
		// far pods takes one uplink. Background flows from the ranks
		// under that edge then fight the collective's cross-pod flows on
		// the pinned link while its twin idles.
		pod := rng.Intn(2)
		edgeIdx := rng.Intn(len(ft.Edge[pod]))
		edge := ft.Edge[pod][edgeIdx]
		// Uplink ports are those facing agg switches.
		var uplinks []int
		for pi, peer := range ft.Node(edge).Ports {
			if ft.Node(peer.Node).Kind == topo.KindSwitch {
				uplinks = append(uplinks, pi)
			}
		}
		cs.PinnedEdge = edge
		cs.PinnedPort = uplinks[rng.Intn(len(uplinks))]
		// Pin the routes toward every rank outside this edge's pod plus
		// the background destinations.
		for _, h := range ranks {
			hostPod := int(h) / (cfg.Ranks / 2) // ranks fill pods 0 and 1
			if hostPod != pod {
				cs.PinnedDsts = append(cs.PinnedDsts, h)
			}
		}
		n := 1 + rng.Intn(3)
		srcs := ft.HostsByEdge[pod][edgeIdx]
		for i := 0; i < n; i++ {
			dst := extras[rng.Intn(len(extras))]
			cs.PinnedDsts = append(cs.PinnedDsts, dst)
			cs.Flows = append(cs.Flows, InjectedFlow{
				Key:     bgKey(srcs[rng.Intn(len(srcs))], dst, i),
				Bytes:   cfg.scaledMB(50 + rng.Float64()*200),
				StartAt: simtime.Time(rng.Int63n(int64(cfg.scaledMS(100)) + 1)),
			})
		}

	case PFCBackpressure:
		// PFC originates off the collective path: an incast converges on
		// an extra host that shares its edge switch with a rank, so the
		// cascade propagates into ports the collective traverses.
		victim := extras[rng.Intn(len(extras))]
		edge, portToVictim := ft.EdgeOf(victim)
		cs.BackpressureRoot = topo.PortID{Node: edge, Port: portToVictim}
		n := 3 + rng.Intn(4)
		start := simtime.Time(rng.Int63n(int64(cfg.scaledMS(150)) + 1))
		for i := 0; i < n; i++ {
			// The paper "designs propagation paths partially overlapping
			// collective communication flows": at least half the incast
			// sources are rank hosts, so the cascade's upper levels pause
			// agg/core egress ports the collective transits.
			var src topo.NodeID
			if i < (n+1)/2 {
				src = ranks[rng.Intn(len(ranks))]
			} else {
				src = ranksAndExtras(ranks, extras, rng, victim)
			}
			cs.Flows = append(cs.Flows, InjectedFlow{
				Key:     bgKey(src, victim, i),
				Bytes:   cfg.scaledMB(50 + rng.Float64()*150),
				StartAt: start + simtime.Time(rng.Int63n(int64(cfg.scaledMS(5))+1)),
			})
		}
	}
	return cs, nil
}

// ranksAndExtras picks a random source host that is not the victim.
func ranksAndExtras(ranks, extras []topo.NodeID, rng *rand.Rand, victim topo.NodeID) topo.NodeID {
	all := append(append([]topo.NodeID{}, ranks...), extras...)
	for {
		h := all[rng.Intn(len(all))]
		if h != victim {
			return h
		}
	}
}

// InjectedKeys returns the ground-truth culprit flow set.
func (c Case) InjectedKeys() map[fabric.FlowKey]bool {
	out := make(map[fabric.FlowKey]bool, len(c.Flows))
	for _, f := range c.Flows {
		out[f.Key] = true
	}
	return out
}
