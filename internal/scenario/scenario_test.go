package scenario

import (
	"testing"

	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/topo"
)

// mustCase and mustRun adapt the error-returning scenario API for tests
// whose fixtures are known-valid.
func mustCase(t *testing.T, kind AnomalyKind, seed int64, cfg Config) Case {
	t.Helper()
	cs, err := GenerateCase(kind, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func mustRun(t *testing.T, cs Case, sys SystemKind, cfg Config, opts RunOptions) Result {
	t.Helper()
	res, err := Run(cs, sys, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	for _, kind := range []AnomalyKind{Contention, Incast, PFCStorm, PFCBackpressure} {
		a := mustCase(t, kind, 42, cfg)
		b := mustCase(t, kind, 42, cfg)
		if len(a.Flows) != len(b.Flows) {
			t.Fatalf("%v: nondeterministic flow count", kind)
		}
		for i := range a.Flows {
			if a.Flows[i] != b.Flows[i] {
				t.Fatalf("%v: flows differ at %d", kind, i)
			}
		}
		if a.StormSwitch != b.StormSwitch || a.StormPort != b.StormPort {
			t.Fatalf("%v: storm ground truth differs", kind)
		}
	}
}

func TestGenerateContentionBounds(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 30; seed++ {
		cs := mustCase(t, Contention, seed, cfg)
		if len(cs.Flows) < 1 || len(cs.Flows) > 6 {
			t.Fatalf("seed %d: %d flows, want 1-6", seed, len(cs.Flows))
		}
		for _, f := range cs.Flows {
			lo, hi := cfg.scaledMB(20), cfg.scaledMB(1000)
			if f.Bytes < lo || f.Bytes > hi {
				t.Fatalf("seed %d: flow bytes %d outside [%d,%d]", seed, f.Bytes, lo, hi)
			}
		}
	}
}

func TestGenerateIncastSharedTarget(t *testing.T) {
	cfg := DefaultConfig()
	for seed := int64(0); seed < 20; seed++ {
		cs := mustCase(t, Incast, seed, cfg)
		if len(cs.Flows) < 3 || len(cs.Flows) > 8 {
			t.Fatalf("seed %d: %d flows, want 3-8", seed, len(cs.Flows))
		}
		dst := cs.Flows[0].Key.Dst
		start := cs.Flows[0].StartAt
		for _, f := range cs.Flows {
			if f.Key.Dst != dst {
				t.Fatalf("seed %d: incast targets differ", seed)
			}
			if f.StartAt != start {
				t.Fatalf("seed %d: incast flows not simultaneous", seed)
			}
		}
	}
}

func TestGenerateStormOnSwitch(t *testing.T) {
	cfg := DefaultConfig()
	ft := topo.PaperFatTree()
	for seed := int64(0); seed < 20; seed++ {
		cs := mustCase(t, PFCStorm, seed, cfg)
		if ft.Node(cs.StormSwitch).Kind != topo.KindSwitch {
			t.Fatalf("seed %d: storm injection point is not a switch", seed)
		}
		if cs.StormDur <= 0 {
			t.Fatalf("seed %d: zero storm duration", seed)
		}
	}
}

func TestRunCleanCase(t *testing.T) {
	cfg := testConfig()
	res := mustRun(t, mustCase(t, Clean, 1, cfg), Vedrfolnir, cfg, DefaultRunOptions(cfg))
	if !res.Completed {
		t.Fatal("clean collective did not complete")
	}
	if res.Outcome != TP {
		t.Fatalf("clean case outcome %v: findings %+v", res.Outcome, res.Diag.Findings)
	}
	// ECMP collisions between the collective's own flows can cause a few
	// legitimate detections, but a clean run must stay cheap and must not
	// produce findings (checked by the TP outcome above).
	if res.Overhead.TelemetryBytes > 64<<10 {
		t.Fatalf("clean case collected %d telemetry bytes", res.Overhead.TelemetryBytes)
	}
}

// testConfig shrinks the workload further for fast unit tests, scaling the
// fabric thresholds with it so PFC cascade depth is preserved.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 1.0 / 360      // 1 MB steps
	cfg.StepBytes = int64(1e6) // explicit
	cfg.CellSize = 16 << 10    // finer cells for small flows
	cfg.Fabric.PFCPauseThreshold = 64 << 10
	cfg.Fabric.PFCResumeThreshold = 32 << 10
	cfg.Fabric.ECNThreshold = 32 << 10
	return cfg
}

func TestRunContentionVedrfolnir(t *testing.T) {
	cfg := testConfig()
	found := 0
	for seed := int64(0); seed < 5; seed++ {
		res := mustRun(t, mustCase(t, Contention, seed, cfg), Vedrfolnir, cfg, DefaultRunOptions(cfg))
		if !res.Completed {
			t.Fatalf("seed %d: incomplete", seed)
		}
		if res.Outcome == TP {
			found++
		}
		if res.Outcome != FN && res.ReportCount == 0 {
			t.Fatalf("seed %d: outcome %v with no reports", seed, res.Outcome)
		}
	}
	if found == 0 {
		t.Fatalf("vedrfolnir never fully detected contention in 5 cases")
	}
}

func TestRunStormVedrfolnir(t *testing.T) {
	cfg := testConfig()
	tps := 0
	for seed := int64(0); seed < 5; seed++ {
		res := mustRun(t, mustCase(t, PFCStorm, seed, cfg), Vedrfolnir, cfg, DefaultRunOptions(cfg))
		if !res.Completed {
			t.Fatalf("seed %d: incomplete", seed)
		}
		if res.Outcome == TP {
			tps++
		}
	}
	if tps == 0 {
		t.Fatalf("vedrfolnir never traced a PFC storm to its switch in 5 cases")
	}
}

func TestRunBackpressureVedrfolnir(t *testing.T) {
	cfg := testConfig()
	tps, fns := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		res := mustRun(t, mustCase(t, PFCBackpressure, seed, cfg), Vedrfolnir, cfg, DefaultRunOptions(cfg))
		if !res.Completed {
			t.Fatalf("seed %d: incomplete", seed)
		}
		switch res.Outcome {
		case TP:
			tps++
		case FN:
			fns++
		}
	}
	if tps == 0 {
		t.Fatalf("vedrfolnir never localized backpressure in 6 cases (FNs: %d)", fns)
	}
}

func TestRunIncastAllSystems(t *testing.T) {
	cfg := testConfig()
	cs := mustCase(t, Incast, 3, cfg)
	for _, sysk := range []SystemKind{Vedrfolnir, HawkeyeMaxR, HawkeyeMinR, FullPolling} {
		res := mustRun(t, cs, sysk, cfg, DefaultRunOptions(cfg))
		if !res.Completed {
			t.Fatalf("%v: incomplete", sysk)
		}
		if sysk == FullPolling && res.Overhead.TelemetryBytes == 0 {
			t.Fatalf("full polling collected nothing")
		}
	}
}

func TestOverheadOrdering(t *testing.T) {
	// The paper's headline: Vedrfolnir's telemetry volume is far below
	// Hawkeye-MinR's and full polling's on the same anomaly.
	cfg := testConfig()
	cs := mustCase(t, Contention, 7, cfg)
	ved := mustRun(t, cs, Vedrfolnir, cfg, DefaultRunOptions(cfg))
	minr := mustRun(t, cs, HawkeyeMinR, cfg, DefaultRunOptions(cfg))
	full := mustRun(t, cs, FullPolling, cfg, DefaultRunOptions(cfg))
	if ved.Overhead.TelemetryBytes >= minr.Overhead.TelemetryBytes {
		t.Fatalf("vedrfolnir %dB >= hawkeye-minr %dB",
			ved.Overhead.TelemetryBytes, minr.Overhead.TelemetryBytes)
	}
	if ved.Overhead.TelemetryBytes >= full.Overhead.TelemetryBytes {
		t.Fatalf("vedrfolnir %dB >= full polling %dB",
			ved.Overhead.TelemetryBytes, full.Overhead.TelemetryBytes)
	}
}

func TestMetrics(t *testing.T) {
	var m Metrics
	m.Add(TP)
	m.Add(TP)
	m.Add(FP)
	m.Add(FN)
	if p := m.Precision(); p != 2.0/3 {
		t.Fatalf("precision = %v", p)
	}
	if r := m.Recall(); r != 2.0/3 {
		t.Fatalf("recall = %v", r)
	}
	var empty Metrics
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Fatalf("empty metrics should be 1/1")
	}
}

func TestEvaluateCriteria(t *testing.T) {
	k0, k1 := bgKey(8, 0, 0), bgKey(9, 1, 1)
	cs := Case{Kind: Contention, Flows: []InjectedFlow{{Key: k0}, {Key: k1}}}

	// No findings → FN.
	if o := Evaluate(cs, &diagnose.Diagnosis{}); o != FN {
		t.Fatalf("no findings: %v, want FN", o)
	}
	// All culprits found → TP.
	all := &diagnose.Diagnosis{Findings: []diagnose.Finding{
		{Type: diagnose.FlowContention, Culprits: []fabric.FlowKey{k0, k1}},
	}}
	if o := Evaluate(cs, all); o != TP {
		t.Fatalf("all found: %v, want TP", o)
	}
	// Partial → FP.
	partial := &diagnose.Diagnosis{Findings: []diagnose.Finding{
		{Type: diagnose.FlowContention, Culprits: []fabric.FlowKey{k0}},
	}}
	if o := Evaluate(cs, partial); o != FP {
		t.Fatalf("partial: %v, want FP", o)
	}
}

func TestRunLoopVedrfolnir(t *testing.T) {
	// Extension scenario (§II-B loops, §V stall watchdog): a forwarding
	// loop inside a collective pod deadlocks the lossless fabric; the
	// watchdog keeps polling the stalled flows and the analyzer localizes
	// the deadlock cycle at the looped switches.
	cfg := testConfig()
	tps := 0
	for seed := int64(0); seed < 5; seed++ {
		res := mustRun(t, mustCase(t, Loop, seed, cfg), Vedrfolnir, cfg, DefaultRunOptions(cfg))
		if res.Outcome == TP {
			tps++
		}
	}
	if tps < 3 {
		t.Fatalf("loop localized in only %d/5 cases", tps)
	}
}

func TestGenerateLoopGroundTruth(t *testing.T) {
	cfg := DefaultConfig()
	ft := topo.PaperFatTree()
	for seed := int64(0); seed < 10; seed++ {
		cs := mustCase(t, Loop, seed, cfg)
		for _, sw := range cs.LoopSwitches {
			if ft.Node(sw).Kind != topo.KindSwitch {
				t.Fatalf("seed %d: loop node %d is not a switch", seed, sw)
			}
		}
		if len(cs.Flows) < 2 {
			t.Fatalf("seed %d: loop needs feeder flows", seed)
		}
		for _, f := range cs.Flows {
			if f.Key.Dst != cs.LoopDst {
				t.Fatalf("seed %d: feeder flow not aimed at loop destination", seed)
			}
		}
	}
}

func TestRunLoadImbalanceVedrfolnir(t *testing.T) {
	// Extension scenario (§II-B load imbalance): pinned ECMP concentrates
	// cross-pod collective flows and background flows on one uplink; the
	// contention and its culprits must still be identified.
	cfg := testConfig()
	tps, fns := 0, 0
	for seed := int64(0); seed < 5; seed++ {
		cs := mustCase(t, LoadImbalance, seed, cfg)
		res := mustRun(t, cs, Vedrfolnir, cfg, DefaultRunOptions(cfg))
		if !res.Completed {
			t.Fatalf("seed %d: incomplete", seed)
		}
		switch res.Outcome {
		case TP:
			tps++
		case FN:
			fns++
		}
		// The pinned uplink must actually be congested: the diagnosis
		// should place at least one contention finding at the pinned
		// edge switch when anything was found at all.
		if res.Outcome != FN {
			atEdge := false
			for _, f := range res.Diag.Findings {
				if f.Port.Node == cs.PinnedEdge {
					atEdge = true
				}
			}
			if !atEdge {
				t.Logf("seed %d: no finding at the pinned edge (findings elsewhere)", seed)
			}
		}
	}
	if tps == 0 {
		t.Fatalf("load imbalance culprits never fully detected (FNs: %d)", fns)
	}
}

func TestWholePipelineDeterminism(t *testing.T) {
	// Figures must regenerate bit-identically: the same case under the
	// same system yields the same diagnosis, overhead, and timings.
	cfg := testConfig()
	for _, kind := range []AnomalyKind{Contention, PFCStorm, PFCBackpressure} {
		cs := mustCase(t, kind, 11, cfg)
		a := mustRun(t, cs, Vedrfolnir, cfg, DefaultRunOptions(cfg))
		b := mustRun(t, cs, Vedrfolnir, cfg, DefaultRunOptions(cfg))
		if a.Outcome != b.Outcome {
			t.Fatalf("%v: outcomes differ", kind)
		}
		if a.CollectiveTime != b.CollectiveTime {
			t.Fatalf("%v: completion times differ: %v vs %v", kind, a.CollectiveTime, b.CollectiveTime)
		}
		if a.Overhead != b.Overhead {
			t.Fatalf("%v: overheads differ: %+v vs %+v", kind, a.Overhead, b.Overhead)
		}
		if a.Diag.Summary() != b.Diag.Summary() {
			t.Fatalf("%v: diagnoses differ:\n%s\n---\n%s", kind, a.Diag.Summary(), b.Diag.Summary())
		}
	}
}

func TestCCSwiftScenario(t *testing.T) {
	// The whole pipeline also works under the Swift controller.
	cfg := testConfig()
	cfg.CC = rdma.CCSwift
	res := mustRun(t, mustCase(t, Contention, 2, cfg), Vedrfolnir, cfg, DefaultRunOptions(cfg))
	if !res.Completed {
		t.Fatal("swift-run collective incomplete")
	}
	if res.Outcome == FN {
		t.Fatalf("swift run missed the anomaly entirely")
	}
}
