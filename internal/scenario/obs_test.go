package scenario

import (
	"bytes"
	"testing"

	"vedrfolnir/internal/obs"
)

// runContention executes one contention case, optionally instrumented, and
// returns the result plus the rendered trace (nil when uninstrumented).
func runContention(t *testing.T, seed int64, instrument bool) (Result, []byte) {
	t.Helper()
	cfg := ConfigForScale(360)
	cs, err := GenerateCase(Contention, seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultRunOptions(cfg)
	var scope *obs.Scope
	if instrument {
		scope = &obs.Scope{Trace: obs.NewTracer(), Metrics: obs.NewRegistry()}
		opts.Obs = scope
	}
	res, err := Run(cs, Vedrfolnir, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !instrument {
		return res, nil
	}
	var buf bytes.Buffer
	if err := scope.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestTraceDeterministicAcrossSeeds pins the tracing determinism contract
// at two seeds: repeating a run reproduces the trace byte-for-byte, and
// different seeds genuinely produce different traces (the check isn't
// vacuous).
func TestTraceDeterministicAcrossSeeds(t *testing.T) {
	traces := map[int64][]byte{}
	for _, seed := range []int64{14, 77} {
		_, first := runContention(t, seed, true)
		_, second := runContention(t, seed, true)
		if !bytes.Equal(first, second) {
			t.Errorf("seed %d: repeated runs produced different traces", seed)
		}
		traces[seed] = first
	}
	if bytes.Equal(traces[14], traces[77]) {
		t.Error("seeds 14 and 77 produced identical traces; determinism check is vacuous")
	}
}

// TestObsDoesNotPerturbRun verifies the zero-interference contract: an
// instrumented run must reach exactly the same simulation outcome and
// diagnosis as an uninstrumented one.
func TestObsDoesNotPerturbRun(t *testing.T) {
	plain, _ := runContention(t, 14, false)
	traced, _ := runContention(t, 14, true)
	if plain.CollectiveTime != traced.CollectiveTime {
		t.Errorf("collective time changed under instrumentation: %v vs %v",
			plain.CollectiveTime, traced.CollectiveTime)
	}
	if plain.Outcome != traced.Outcome {
		t.Errorf("outcome changed under instrumentation: %v vs %v", plain.Outcome, traced.Outcome)
	}
	if plain.ReportCount != traced.ReportCount {
		t.Errorf("report count changed under instrumentation: %d vs %d",
			plain.ReportCount, traced.ReportCount)
	}
	if a, b := plain.Diag.Summary(), traced.Diag.Summary(); a != b {
		t.Errorf("diagnosis changed under instrumentation:\n--- plain ---\n%s--- traced ---\n%s", a, b)
	}
}
