package scenario

import (
	"bytes"
	"testing"

	"vedrfolnir/internal/wire"
)

// TestSerializedOutputDeterminism is the regression gate behind the
// mapiterorder invariant: two runs of the same seeded case must produce
// byte-identical serialized bundles and diagnosis summaries. Unsorted map
// iteration anywhere on the record/report/diagnosis path shows up here as a
// flaky byte diff, which is exactly how the bugs this PR fixed (waitgraph
// vertex order, provenance traversal order, runner start order) would have
// been caught.
func TestSerializedOutputDeterminism(t *testing.T) {
	cfg := testConfig()
	for _, kind := range []AnomalyKind{Contention, Incast, PFCStorm, PFCBackpressure} {
		serialize := func() ([]byte, string) {
			cs := mustCase(t, kind, 17, cfg)
			res := mustRun(t, cs, Vedrfolnir, cfg, DefaultRunOptions(cfg))
			var buf bytes.Buffer
			if err := wire.NewBundle(res.Records, res.Reports, res.CFs).Write(&buf); err != nil {
				t.Fatalf("%v: serializing bundle: %v", kind, err)
			}
			return buf.Bytes(), res.Diag.Summary()
		}
		bundleA, summaryA := serialize()
		bundleB, summaryB := serialize()
		if !bytes.Equal(bundleA, bundleB) {
			t.Errorf("%v: serialized bundles differ across identical-seed runs (%d vs %d bytes)",
				kind, len(bundleA), len(bundleB))
		}
		if summaryA != summaryB {
			t.Errorf("%v: diagnosis summaries differ:\n%s\n---\n%s", kind, summaryA, summaryB)
		}
	}
}
