package scenario

import (
	"fmt"

	"vedrfolnir/internal/chaos"
	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/monitor"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
)

// stepDurBoundsNS are the vedr_step_duration_ns histogram buckets: 1 µs
// to ~1 s in powers of four, wide enough for every workload scale.
var stepDurBoundsNS = []int64{
	1_000, 4_000, 16_000, 64_000, 256_000,
	1_024_000, 4_096_000, 16_384_000, 65_536_000, 262_144_000, 1_048_576_000,
}

// instrumentRun chains the observability hooks into a built run: track
// names, per-step spans with SSQ/RSQ transition instants, and the monitor
// scope. Call only when scope is enabled; everything recorded is keyed by
// sim time, so the trace is deterministic.
func instrumentRun(scope *obs.Scope, run *collective.Runner, sys *monitor.System, ranks []topo.NodeID) {
	tr := scope.T()
	tr.NameProcess(obs.PidKernel, "kernel")
	tr.NameProcess(obs.PidCollective, "collective")
	tr.NameProcess(obs.PidMonitor, "monitor")
	tr.NameProcess(obs.PidFabric, "fabric")
	tr.NameProcess(obs.PidAnalyzer, "analyzer")
	tr.NameThread(obs.PidAnalyzer, 0, "phases")
	for _, id := range ranks {
		tr.NameThread(obs.PidCollective, int(id), fmt.Sprintf("rank %d", id))
		if sys != nil && sys.Monitors[id] != nil {
			tr.NameThread(obs.PidMonitor, int(id), fmt.Sprintf("monitor %d", id))
		}
	}
	if sys != nil {
		sys.SetObs(scope)
	}

	steps := scope.M().Counter("vedr_collective_steps_total", "collective steps completed")
	stepDur := scope.M().Histogram("vedr_step_duration_ns",
		"collective step execution time (ns)", stepDurBoundsNS)

	prevStart := run.OnStepStart
	run.OnStepStart = func(host topo.NodeID, step int, flow fabric.FlowKey, at simtime.Time) {
		if prevStart != nil {
			prevStart(host, step, flow, at)
		}
		// The SSQ/RSQ indices at step entry are the Table I wait-state
		// inputs; recording them at every transition makes the waiting
		// decomposition visible on the timeline.
		tr.Instant(obs.PidCollective, int(host), "queue", "step-start", at,
			obs.I("step", int64(step)),
			obs.I("ssq", int64(run.SendIndex(host))),
			obs.I("rsq", int64(run.RecvIndex(host))),
			obs.S("flow", flow.String()))
	}
	prevEnd := run.OnStepEnd
	run.OnStepEnd = func(rec collective.StepRecord) {
		if prevEnd != nil {
			prevEnd(rec)
		}
		bound := int64(0)
		if rec.BoundByWait {
			bound = 1
		}
		tr.Span(obs.PidCollective, int(rec.Host), "step", fmt.Sprintf("S%d", rec.Step),
			rec.Start, rec.End,
			obs.I("bytes", rec.Bytes),
			obs.I("wait_src", int64(rec.WaitSrc)),
			obs.I("bound_by_wait", bound))
		steps.Inc()
		stepDur.Observe(int64(rec.End.Sub(rec.Start)))
	}
}

// recordRunObs snapshots the post-run state into the scope: the PFC
// pause/resume timeline (the fabric's PFCLog is append-ordered by sim
// time), fabric and kernel counters, control-plane overhead, and chaos
// fault totals.
func recordRunObs(scope *obs.Scope, k *sim.Kernel, net *fabric.Network,
	totals telemetry.Overhead, ch *chaos.Chaos, doneAt simtime.Time, completed bool) {

	tr := scope.T()
	var pauses, resumes int64
	for _, ev := range net.PFCLog {
		name := "pfc-resume"
		if ev.Pause {
			name = "pfc-pause"
			pauses++
		} else {
			resumes++
		}
		injected := int64(0)
		if ev.Injected {
			injected = 1
		}
		tr.NameThread(obs.PidFabric, int(ev.Upstream.Node), fmt.Sprintf("switch %d", ev.Upstream.Node))
		tr.Instant(obs.PidFabric, int(ev.Upstream.Node), "pfc", name, ev.At,
			obs.I("port", int64(ev.Upstream.Port)),
			obs.I("downstream", int64(ev.Downstream)),
			obs.I("cause_egress", int64(ev.CauseEgress)),
			obs.I("injected", injected))
	}

	m := scope.M()
	m.Counter("vedr_fabric_pfc_pauses_total", "PFC pause frames logged").Add(pauses)
	m.Counter("vedr_fabric_pfc_resumes_total", "PFC resume frames logged").Add(resumes)
	m.Counter("vedr_fabric_ecn_marks_total", "ECN CE marks applied at switch egresses").Add(net.ECNMarksTotal())
	m.Counter("vedr_sim_events_total", "kernel events executed").Add(int64(k.Events()))
	m.Gauge("vedr_sim_event_queue_max", "event-queue depth high-water mark").Max(int64(k.MaxPending()))
	m.Counter("vedr_telemetry_bytes_total", "telemetry record bytes collected").Add(totals.TelemetryBytes)
	m.Counter("vedr_poll_bytes_total", "poll-query bytes crossing switch hops").Add(totals.PollBytes)
	m.Counter("vedr_report_bytes_total", "switch-to-analyzer report bytes").Add(totals.ReportBytes)
	m.Counter("vedr_notify_bytes_total", "notification-packet bytes").Add(totals.NotifyBytes)
	if ch != nil {
		m.Counter("vedr_chaos_faults_total", "control-plane faults injected").Add(int64(ch.Stats.Total()))
		m.Counter("vedr_chaos_notify_dropped_total", "notification packets dropped").Add(int64(ch.Stats.NotifyDropped))
		m.Counter("vedr_chaos_monitor_kills_total", "monitor processes killed").Add(int64(ch.Stats.MonitorKills))
	}

	obs.WithSimClock(scope.L(), k.Now).Info("collective run finished",
		"done", simtime.Duration(doneAt), "completed", completed,
		"events", int64(k.Events()), "pfc_pauses", pauses)
}
