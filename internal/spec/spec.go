package spec

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"vedrfolnir/internal/chaos"
	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
)

// Unset is the sentinel for numeric expectation fields the spec did not
// declare: counts and probabilities are never negative, so -1 means "no
// assertion".
const Unset = -1

// Mode selects how the runner executes a spec.
type Mode uint8

// Execution modes.
const (
	// InProcess runs the scenario and diagnosis inside the runner's own
	// process (the fast path; what CI runs under -race).
	InProcess Mode = iota
	// Analyzerd additionally replays the run's records, reports, and
	// collective flows end-to-end through a real vedranalyzerd process over
	// the seq/ack ReliableClient, asserting the daemon's diagnosis is
	// byte-identical to the in-process one — optionally SIGKILLing and
	// restarting the daemon mid-stream.
	Analyzerd
	// Fleet replays the run through `vedranalyzerd -cluster`: per-host
	// reliable clients stream to a consistent-hash router over N supervised
	// shard daemons, optionally SIGKILLing one shard mid-stream (recovered)
	// or holding one down through the drain (degraded diagnosis).
	Fleet
)

func (m Mode) String() string {
	switch m {
	case InProcess:
		return "in-process"
	case Analyzerd:
		return "analyzerd"
	case Fleet:
		return "fleet"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Flow is one explicitly declared background flow of the anomaly timeline.
// Sizes and start times are quoted at paper scale — the compiler scales
// them by the scenario's workload scale exactly as GenerateCase does.
type Flow struct {
	// Src and Dst are fat-tree host IDs (0–15; hosts 0..ranks-1 are the
	// collective ranks, the rest are bystanders).
	Src, Dst int
	// MB is the flow size in paper-scale megabytes.
	MB float64
	// StartMS is the flow start in paper-scale milliseconds.
	StartMS float64
	// Line is the source line the flow was declared on.
	Line int
}

// Scenario declares the simulated world: topology, collective workload,
// and the anomaly construction (seeded, or an explicit flow timeline).
type Scenario struct {
	// Topology names the fabric; "paper-fattree" (the §IV-A K=4 fat-tree)
	// is the only member of the subset today.
	Topology string
	// Anomaly is the case construction (required).
	Anomaly scenario.AnomalyKind
	// Seeds holds the case seeds: one for a single-case spec, several for
	// a precision/recall cell. Always non-empty after validation.
	Seeds []int64
	// MultiSeed records whether the spec used the `seeds:` list form
	// (which unlocks aggregate expectations).
	MultiSeed bool
	// System is the diagnosis system under test (default vedrfolnir).
	System scenario.SystemKind
	// ScaleDen is the workload scale denominator (default 90: every
	// paper-quoted size and time is multiplied by 1/90).
	ScaleDen float64
	// Ranks is the number of collective participants (default 8).
	Ranks int
	// Op and Alg select the collective (default ring allgather).
	Op  collective.Op
	Alg collective.Algorithm
	// Flows, when non-empty, replaces the seeded anomaly construction with
	// an explicit timeline (flow-contention, incast, and clean only).
	Flows []Flow
}

// Params are the detection-parameter overrides (the Fig 12/13 knobs).
// Zero fields leave the system's default operating point untouched.
type Params struct {
	RTTFactor         float64
	MaxDetectPerStep  int
	FixedRTTThreshold simtime.Duration
	Unrestricted      bool
}

// AnalyzerdSpec tunes the end-to-end mode's daemon.
type AnalyzerdSpec struct {
	// KillAfter, when > 0, SIGKILLs the daemon after that many acked
	// messages and restarts it against the same WAL directory, proving the
	// assertions survive crash recovery.
	KillAfter int
	// SnapshotEvery is the daemon's -snapshot-every (default 4).
	SnapshotEvery int
	// Fsync is the daemon's -fsync policy (default "always").
	Fsync string
}

// FleetSpec tunes the fleet mode's sharded cluster.
type FleetSpec struct {
	// Shards is the fleet width (required, in [2, 16]).
	Shards int
	// Replicas is the consistent-hash vnode count per shard (0 = default).
	Replicas int
	// KillShard, when not Unset, SIGKILLs that shard after KillAfter acked
	// messages; its supervisor restarts it on its WAL and the runner
	// asserts the merged diagnosis matches an unbroken run.
	KillShard int
	// KillAfter is the fleet-wide acked-message count that triggers the
	// kill (required with KillShard).
	KillAfter int
	// HoldShard, when not Unset, holds that shard down at drain time; the
	// runner asserts a degraded (confidence < 1) diagnosis.
	HoldShard int
	// ResizeTo, when > 0, live-rebalances the fleet to that shard count
	// mid-run; the runner asserts the resize completed and the merged
	// diagnosis still matches the local canonical merge.
	ResizeTo int
	// ResizeAfter is the fleet-wide acked-message count that triggers
	// the resize (0 = as soon as the fleet is up).
	ResizeAfter int
	// RebalanceKillPhase / RebalanceKillShard, when set, SIGKILL that
	// shard the moment the rebalance announces that cut-point phase
	// ("before-quiesce", "during-handoff", "after-flip"); the supervisor
	// restarts it and byte-identity must still hold. Requires ResizeTo.
	RebalanceKillPhase string
	RebalanceKillShard int
	// TenantRate / TenantBurst, when Rate > 0, enable the router's
	// per-tenant token-bucket quotas (messages per second / bucket
	// depth) for the replay's clients.
	TenantRate  float64
	TenantBurst int
	// SnapshotEvery is each shard's -snapshot-every (default 4); Fsync is
	// the -fsync policy (default "always").
	SnapshotEvery int
	Fsync         string
}

// Expect declares the assertions the runner diffs the diagnosis against.
// Numeric fields use Unset (-1) when not declared; string and list fields
// use their zero values.
type Expect struct {
	// Outcome is the paper's per-case verdict ("TP", "FP", "FN"); with a
	// seeds list it must hold for every case.
	Outcome string
	// Completed asserts whether the collective finished before the
	// deadline (nil: no assertion).
	Completed *bool
	// AnomalyTypes asserts that every listed anomaly class appears among
	// the findings (diagnose.AnomalyType names).
	AnomalyTypes []string
	// Finding-count bounds.
	MinFindings, MaxFindings int
	// Culprit-set assertions: CulpritsIncludeInjected requires every
	// injected ground-truth flow among the diagnosed culprits.
	CulpritsIncludeInjected  bool
	MinCulprits, MaxCulprits int
	// Victim assertions over the findings' Affected flows:
	// VictimsAreCollective requires every victim to be a collective flow.
	MinVictims           int
	VictimsAreCollective bool
	// Coverage/Confidence bounds on the diagnosis (degraded-telemetry
	// specs assert < 1).
	MinConfidence, MaxConfidence float64
	// RootLocalized asserts the PFC root was traced to the ground-truth
	// switch/port (pfc-storm and pfc-backpressure only).
	RootLocalized bool
	// Aggregate expectations over a seeds list (exact or lower-bounded).
	Precision, Recall       float64
	MinPrecision, MinRecall float64
}

// Spec is one fully validated scenario spec.
type Spec struct {
	Name        string
	Description string
	Mode        Mode
	Scenario    Scenario
	Params      Params
	// Chaos is the resolved fault-injection config (the `loss:` uniform
	// shorthand already folded in).
	Chaos     chaos.Config
	Analyzerd AnalyzerdSpec
	Fleet     FleetSpec
	Expect    Expect
}

// Load reads and parses one spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSpec(data)
}

// ParseSpec parses, decodes, defaults, and validates one spec document.
// All errors carry the 1-based source line.
func ParseSpec(data []byte) (*Spec, error) {
	root, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return decodeSpec(root)
}

// dec decodes one mapping node with consumed-key tracking, so any key the
// schema does not know is reported with its line.
type dec struct {
	n    *Node
	used map[string]bool
}

func newDec(n *Node) *dec { return &dec{n: n, used: make(map[string]bool)} }

// entry marks a key consumed and returns its value node (nil if absent).
func (d *dec) entry(key string) *Node {
	d.used[key] = true
	return d.n.Get(key)
}

// finish errors on the first unconsumed (unknown) key, in source order.
func (d *dec) finish(section string) error {
	for _, e := range d.n.Entries {
		if !d.used[e.Key] {
			return errAt(e.Line, "unknown key %q in %s", e.Key, section)
		}
	}
	return nil
}

func scalarOf(n *Node, key string) (*Node, error) {
	if n.Kind != ScalarNode {
		return nil, errAt(n.Line, "key %q: expected a scalar, got a %s", key, n.Kind)
	}
	return n, nil
}

func (d *dec) str(key string) (string, int, bool, error) {
	n := d.entry(key)
	if n == nil {
		return "", 0, false, nil
	}
	s, err := scalarOf(n, key)
	if err != nil {
		return "", 0, false, err
	}
	return s.Value, s.Line, true, nil
}

func (d *dec) num(key string) (*Node, error) {
	n := d.entry(key)
	if n == nil {
		return nil, nil
	}
	s, err := scalarOf(n, key)
	if err != nil {
		return nil, err
	}
	if s.Quoted {
		return nil, errAt(s.Line, "key %q: quoted scalar where a number is expected", key)
	}
	return s, nil
}

func (d *dec) intVal(key string) (int64, int, bool, error) {
	s, err := d.num(key)
	if s == nil || err != nil {
		return 0, 0, false, err
	}
	v, perr := strconv.ParseInt(s.Value, 10, 64)
	if perr != nil {
		return 0, 0, false, errAt(s.Line, "key %q: cannot parse %q as an integer", key, s.Value)
	}
	return v, s.Line, true, nil
}

func (d *dec) floatVal(key string) (float64, int, bool, error) {
	s, err := d.num(key)
	if s == nil || err != nil {
		return 0, 0, false, err
	}
	v, perr := strconv.ParseFloat(s.Value, 64)
	if perr != nil {
		return 0, 0, false, errAt(s.Line, "key %q: cannot parse %q as a number", key, s.Value)
	}
	return v, s.Line, true, nil
}

func (d *dec) boolVal(key string) (bool, int, bool, error) {
	s, err := d.num(key)
	if s == nil || err != nil {
		return false, 0, false, err
	}
	switch s.Value {
	case "true":
		return true, s.Line, true, nil
	case "false":
		return false, s.Line, true, nil
	}
	return false, 0, false, errAt(s.Line, "key %q: cannot parse %q as a bool (true/false)", key, s.Value)
}

// durVal parses a Go duration string ("10ms", "1.5s").
func (d *dec) durVal(key string) (time.Duration, int, bool, error) {
	n := d.entry(key)
	if n == nil {
		return 0, 0, false, nil
	}
	s, err := scalarOf(n, key)
	if err != nil {
		return 0, 0, false, err
	}
	v, perr := time.ParseDuration(s.Value)
	if perr != nil {
		return 0, 0, false, errAt(s.Line, "key %q: cannot parse %q as a duration (e.g. \"10ms\")", key, s.Value)
	}
	return v, s.Line, true, nil
}

func (d *dec) mapping(key string) (*dec, error) {
	n := d.entry(key)
	if n == nil {
		return nil, nil
	}
	if n.Kind != MappingNode {
		return nil, errAt(n.Line, "key %q: expected a mapping, got a %s", key, n.Kind)
	}
	return newDec(n), nil
}

func (d *dec) sequence(key string) (*Node, error) {
	n := d.entry(key)
	if n == nil {
		return nil, nil
	}
	if n.Kind != SequenceNode {
		return nil, errAt(n.Line, "key %q: expected a sequence, got a %s", key, n.Kind)
	}
	return n, nil
}

func decodeSpec(root *Node) (*Spec, error) {
	d := newDec(root)
	sp := &Spec{}
	var err error
	if sp.Name, _, _, err = d.str("name"); err != nil {
		return nil, err
	}
	if sp.Description, _, _, err = d.str("description"); err != nil {
		return nil, err
	}
	mode, line, ok, err := d.str("mode")
	if err != nil {
		return nil, err
	}
	if ok {
		switch mode {
		case "in-process":
			sp.Mode = InProcess
		case "analyzerd":
			sp.Mode = Analyzerd
		case "fleet":
			sp.Mode = Fleet
		default:
			return nil, errAt(line, "key \"mode\": unknown mode %q (in-process, analyzerd, fleet)", mode)
		}
	}

	sc, err := d.mapping("scenario")
	if err != nil {
		return nil, err
	}
	if sc == nil {
		return nil, errAt(root.Line, "missing required section \"scenario\"")
	}
	if err := decodeScenario(sc, sp); err != nil {
		return nil, err
	}

	pm, err := d.mapping("params")
	if err != nil {
		return nil, err
	}
	if pm != nil {
		if err := decodeParams(pm, sp); err != nil {
			return nil, err
		}
	}

	ch, err := d.mapping("chaos")
	if err != nil {
		return nil, err
	}
	if ch != nil {
		if err := decodeChaos(ch, sp); err != nil {
			return nil, err
		}
	}

	an, err := d.mapping("analyzerd")
	if err != nil {
		return nil, err
	}
	if an != nil {
		if sp.Mode != Analyzerd {
			return nil, errAt(an.n.Line, "section \"analyzerd\" requires mode: analyzerd")
		}
		if err := decodeAnalyzerd(an, sp); err != nil {
			return nil, err
		}
	}
	if sp.Mode == Analyzerd {
		if sp.Analyzerd.SnapshotEvery == 0 {
			sp.Analyzerd.SnapshotEvery = 4
		}
		if sp.Analyzerd.Fsync == "" {
			sp.Analyzerd.Fsync = "always"
		}
	}

	fl, err := d.mapping("fleet")
	if err != nil {
		return nil, err
	}
	sp.Fleet.KillShard, sp.Fleet.HoldShard, sp.Fleet.RebalanceKillShard = Unset, Unset, Unset
	if fl != nil {
		if sp.Mode != Fleet {
			return nil, errAt(fl.n.Line, "section \"fleet\" requires mode: fleet")
		}
		if err := decodeFleet(fl, sp); err != nil {
			return nil, err
		}
	}
	if sp.Mode == Fleet {
		if fl == nil {
			return nil, errAt(root.Line, "mode fleet requires a \"fleet\" section (at least \"shards\")")
		}
		if sp.Fleet.SnapshotEvery == 0 {
			sp.Fleet.SnapshotEvery = 4
		}
		if sp.Fleet.Fsync == "" {
			sp.Fleet.Fsync = "always"
		}
	}

	ex, err := d.mapping("expect")
	if err != nil {
		return nil, err
	}
	if ex == nil {
		return nil, errAt(root.Line, "missing required section \"expect\" (a spec with no assertions tests nothing)")
	}
	exLine := ex.n.Line
	if err := decodeExpect(ex, sp); err != nil {
		return nil, err
	}

	if err := d.finish("the spec"); err != nil {
		return nil, err
	}
	if err := validate(sp, exLine); err != nil {
		return nil, err
	}
	return sp, nil
}

func decodeScenario(d *dec, sp *Spec) error {
	s := &sp.Scenario

	topo, line, ok, err := d.str("topology")
	if err != nil {
		return err
	}
	s.Topology = "paper-fattree"
	if ok && topo != "paper-fattree" {
		return errAt(line, "key \"topology\": unknown topology %q (paper-fattree)", topo)
	}

	anom, line, ok, err := d.str("anomaly")
	if err != nil {
		return err
	}
	if !ok {
		return errAt(d.n.Line, "scenario: missing required key \"anomaly\"")
	}
	kind, known := ParseAnomaly(anom)
	if !known {
		return errAt(line, "key \"anomaly\": unknown anomaly %q (%s)", anom, anomalyNames())
	}
	s.Anomaly = kind

	seed, seedLine, hasSeed, err := d.intVal("seed")
	if err != nil {
		return err
	}
	seqNode, err := d.sequence("seeds")
	if err != nil {
		return err
	}
	switch {
	case hasSeed && seqNode != nil:
		return errAt(seedLine, "keys \"seed\" and \"seeds\" are mutually exclusive")
	case seqNode != nil:
		if len(seqNode.Items) == 0 {
			return errAt(seqNode.Line, "key \"seeds\": empty seed list")
		}
		s.MultiSeed = true
		for _, item := range seqNode.Items {
			sc, err := scalarOf(item, "seeds")
			if err != nil {
				return err
			}
			v, perr := strconv.ParseInt(sc.Value, 10, 64)
			if perr != nil {
				return errAt(sc.Line, "key \"seeds\": cannot parse %q as an integer", sc.Value)
			}
			s.Seeds = append(s.Seeds, v)
		}
	case hasSeed:
		s.Seeds = []int64{seed}
	default:
		s.Seeds = []int64{1}
	}

	sys, line, ok, err := d.str("system")
	if err != nil {
		return err
	}
	if ok {
		k, known := ParseSystem(sys)
		if !known {
			return errAt(line, "key \"system\": unknown system %q (vedrfolnir, hawkeye-maxr, hawkeye-minr, full-polling)", sys)
		}
		s.System = k
	} else {
		s.System = scenario.Vedrfolnir
	}

	scale, line, ok, err := d.floatVal("scale")
	if err != nil {
		return err
	}
	s.ScaleDen = 90
	if ok {
		if scale <= 0 {
			return errAt(line, "key \"scale\": scale denominator must be > 0, got %v", scale)
		}
		s.ScaleDen = scale
	}

	ranks, line, ok, err := d.intVal("ranks")
	if err != nil {
		return err
	}
	s.Ranks = 8
	if ok {
		if ranks < 2 || ranks > 16 || ranks%2 != 0 {
			return errAt(line, "key \"ranks\": ranks must be even and in [2, 16], got %d", ranks)
		}
		s.Ranks = int(ranks)
	}

	op, line, ok, err := d.str("op")
	if err != nil {
		return err
	}
	s.Op = collective.AllGather
	if ok {
		k, known := ParseOp(op)
		if !known {
			return errAt(line, "key \"op\": unknown collective op %q (allgather, reducescatter, allreduce)", op)
		}
		s.Op = k
	}

	alg, line, ok, err := d.str("alg")
	if err != nil {
		return err
	}
	s.Alg = collective.Ring
	if ok {
		k, known := ParseAlg(alg)
		if !known {
			return errAt(line, "key \"alg\": unknown algorithm %q (ring, halving-doubling)", alg)
		}
		s.Alg = k
	}

	flows, err := d.sequence("flows")
	if err != nil {
		return err
	}
	if flows != nil {
		if len(flows.Items) == 0 {
			return errAt(flows.Line, "key \"flows\": empty flow list (omit the key instead)")
		}
		for _, item := range flows.Items {
			if item.Kind != MappingNode {
				return errAt(item.Line, "key \"flows\": each flow is a mapping (src/dst/mb/start-ms)")
			}
			f, err := decodeFlow(newDec(item))
			if err != nil {
				return err
			}
			s.Flows = append(s.Flows, f)
		}
	}

	return d.finish("section \"scenario\"")
}

func decodeFlow(d *dec) (Flow, error) {
	f := Flow{Line: d.n.Line}
	src, line, ok, err := d.intVal("src")
	if err != nil {
		return f, err
	}
	if !ok {
		return f, errAt(d.n.Line, "flow: missing required key \"src\"")
	}
	if src < 0 || src > 15 {
		return f, errAt(line, "key \"src\": host ID must be in [0, 15], got %d", src)
	}
	f.Src = int(src)

	dst, line, ok, err := d.intVal("dst")
	if err != nil {
		return f, err
	}
	if !ok {
		return f, errAt(d.n.Line, "flow: missing required key \"dst\"")
	}
	if dst < 0 || dst > 15 {
		return f, errAt(line, "key \"dst\": host ID must be in [0, 15], got %d", dst)
	}
	if dst == src {
		return f, errAt(line, "flow: src and dst are both host %d", dst)
	}
	f.Dst = int(dst)

	mb, line, ok, err := d.floatVal("mb")
	if err != nil {
		return f, err
	}
	if !ok {
		return f, errAt(d.n.Line, "flow: missing required key \"mb\"")
	}
	if mb <= 0 {
		return f, errAt(line, "key \"mb\": flow size must be > 0 MB, got %v", mb)
	}
	f.MB = mb

	start, line, ok, err := d.floatVal("start-ms")
	if err != nil {
		return f, err
	}
	if ok {
		if start < 0 {
			return f, errAt(line, "key \"start-ms\": start must be >= 0 ms, got %v", start)
		}
		f.StartMS = start
	}
	return f, d.finish("a flow")
}

func decodeParams(d *dec, sp *Spec) error {
	p := &sp.Params
	var err error
	var line int
	var ok bool
	if p.RTTFactor, line, ok, err = d.floatVal("rtt-factor"); err != nil {
		return err
	}
	if ok && p.RTTFactor <= 0 {
		return errAt(line, "key \"rtt-factor\": must be > 0, got %v", p.RTTFactor)
	}
	mds, line, ok, err := d.intVal("max-detect-per-step")
	if err != nil {
		return err
	}
	if ok {
		if mds <= 0 {
			return errAt(line, "key \"max-detect-per-step\": must be > 0, got %d", mds)
		}
		p.MaxDetectPerStep = int(mds)
	}
	fixed, line, ok, err := d.durVal("fixed-rtt-threshold")
	if err != nil {
		return err
	}
	if ok {
		if fixed <= 0 {
			return errAt(line, "key \"fixed-rtt-threshold\": must be > 0, got %v", fixed)
		}
		p.FixedRTTThreshold = simtime.Duration(fixed)
	}
	if p.Unrestricted, _, _, err = d.boolVal("unrestricted"); err != nil {
		return err
	}
	return d.finish("section \"params\"")
}

func decodeChaos(d *dec, sp *Spec) error {
	loss, line, ok, err := d.floatVal("loss")
	if err != nil {
		return err
	}
	if ok {
		if loss < 0 || loss > 1 {
			return errAt(line, "key \"loss\": rate must be in [0, 1], got %v", loss)
		}
		sp.Chaos = chaos.UniformLoss(loss)
	}

	seed, _, ok, err := d.intVal("seed")
	if err != nil {
		return err
	}
	if ok {
		sp.Chaos.Seed = seed
	}

	rate := func(key string, dst *float64) error {
		v, line, ok, err := d.floatVal(key)
		if err != nil {
			return err
		}
		if ok {
			if v < 0 || v > 1 {
				return errAt(line, "key %q: rate must be in [0, 1], got %v", key, v)
			}
			*dst = v
		}
		return nil
	}
	dur := func(key string, dst *simtime.Duration) error {
		v, line, ok, err := d.durVal(key)
		if err != nil {
			return err
		}
		if ok {
			if v < 0 {
				return errAt(line, "key %q: duration must be >= 0, got %v", key, v)
			}
			*dst = simtime.Duration(v)
		}
		return nil
	}
	c := &sp.Chaos
	for _, step := range []error{
		rate("notify-drop-rate", &c.NotifyDropRate),
		rate("notify-dup-rate", &c.NotifyDupRate),
		rate("notify-delay-rate", &c.NotifyDelayRate),
		dur("notify-delay", &c.NotifyDelay),
		rate("poll-loss-rate", &c.PollLossRate),
		rate("port-loss-rate", &c.PortLossRate),
		rate("monitor-kill-rate", &c.MonitorKillRate),
		dur("monitor-kill-window", &c.MonitorKillWindow),
		dur("monitor-down-for", &c.MonitorDownFor),
	} {
		if step != nil {
			return step
		}
	}
	return d.finish("section \"chaos\"")
}

func decodeAnalyzerd(d *dec, sp *Spec) error {
	a := &sp.Analyzerd
	ka, line, ok, err := d.intVal("kill-after")
	if err != nil {
		return err
	}
	if ok {
		if ka <= 0 {
			return errAt(line, "key \"kill-after\": must be > 0 acked messages, got %d", ka)
		}
		a.KillAfter = int(ka)
	}
	se, line, ok, err := d.intVal("snapshot-every")
	if err != nil {
		return err
	}
	if ok {
		if se <= 0 {
			return errAt(line, "key \"snapshot-every\": must be > 0, got %d", se)
		}
		a.SnapshotEvery = int(se)
	}
	fs, line, ok, err := d.str("fsync")
	if err != nil {
		return err
	}
	if ok {
		switch fs {
		case "always", "interval", "off":
			a.Fsync = fs
		default:
			return errAt(line, "key \"fsync\": unknown policy %q (always, interval, off)", fs)
		}
	}
	return d.finish("section \"analyzerd\"")
}

func decodeFleet(d *dec, sp *Spec) error {
	f := &sp.Fleet
	shards, line, ok, err := d.intVal("shards")
	if err != nil {
		return err
	}
	if !ok {
		return errAt(d.n.Line, "fleet: missing required key \"shards\"")
	}
	if shards < 2 || shards > 16 {
		return errAt(line, "key \"shards\": fleet width must be in [2, 16], got %d", shards)
	}
	f.Shards = int(shards)

	reps, line, ok, err := d.intVal("replicas")
	if err != nil {
		return err
	}
	if ok {
		if reps <= 0 {
			return errAt(line, "key \"replicas\": must be > 0 vnodes per shard, got %d", reps)
		}
		f.Replicas = int(reps)
	}

	ks, ksLine, hasKS, err := d.intVal("kill-shard")
	if err != nil {
		return err
	}
	if hasKS {
		if ks < 0 || ks >= shards {
			return errAt(ksLine, "key \"kill-shard\": shard index must be in [0, %d), got %d", shards, ks)
		}
		f.KillShard = int(ks)
	}
	ka, line, hasKA, err := d.intVal("kill-shard-after")
	if err != nil {
		return err
	}
	if hasKA {
		if !hasKS {
			return errAt(line, "key \"kill-shard-after\" requires \"kill-shard\"")
		}
		if ka <= 0 {
			return errAt(line, "key \"kill-shard-after\": must be > 0 acked messages, got %d", ka)
		}
		f.KillAfter = int(ka)
	}
	if hasKS && !hasKA {
		return errAt(ksLine, "key \"kill-shard\" requires \"kill-shard-after\"")
	}

	hs, line, hasHS, err := d.intVal("hold-down-shard")
	if err != nil {
		return err
	}
	if hasHS {
		if hasKS {
			return errAt(line, "keys \"kill-shard\" and \"hold-down-shard\" are mutually exclusive")
		}
		if hs < 0 || hs >= shards {
			return errAt(line, "key \"hold-down-shard\": shard index must be in [0, %d), got %d", shards, hs)
		}
		f.HoldShard = int(hs)
	}

	rt, rtLine, hasRT, err := d.intVal("resize-to")
	if err != nil {
		return err
	}
	if hasRT {
		if rt < 1 || rt > 16 {
			return errAt(rtLine, "key \"resize-to\": target width must be in [1, 16], got %d", rt)
		}
		if int(rt) == f.Shards {
			return errAt(rtLine, "key \"resize-to\": target width %d equals \"shards\" (nothing to rebalance)", rt)
		}
		if hasHS {
			return errAt(rtLine, "keys \"resize-to\" and \"hold-down-shard\" are mutually exclusive")
		}
		if hasKS {
			return errAt(rtLine, "keys \"resize-to\" and \"kill-shard\" are mutually exclusive (use \"rebalance-kill-phase\")")
		}
		f.ResizeTo = int(rt)
	}
	ra, line, hasRA, err := d.intVal("resize-after")
	if err != nil {
		return err
	}
	if hasRA {
		if !hasRT {
			return errAt(line, "key \"resize-after\" requires \"resize-to\"")
		}
		if ra <= 0 {
			return errAt(line, "key \"resize-after\": must be > 0 acked messages, got %d", ra)
		}
		f.ResizeAfter = int(ra)
	}
	phase, phLine, hasPh, err := d.str("rebalance-kill-phase")
	if err != nil {
		return err
	}
	if hasPh {
		if !hasRT {
			return errAt(phLine, "key \"rebalance-kill-phase\" requires \"resize-to\"")
		}
		switch phase {
		case "before-quiesce", "during-handoff", "after-flip":
			f.RebalanceKillPhase = phase
		default:
			return errAt(phLine, "key \"rebalance-kill-phase\": unknown cut point %q (before-quiesce, during-handoff, after-flip)", phase)
		}
	}
	rks, line, hasRKS, err := d.intVal("rebalance-kill-shard")
	if err != nil {
		return err
	}
	if hasRKS {
		if !hasPh {
			return errAt(line, "key \"rebalance-kill-shard\" requires \"rebalance-kill-phase\"")
		}
		// The shard must exist at the chosen cut point: a grow target is
		// not yet started before the quiesce, and a shrink donor is
		// already stopped after the flip.
		width := f.Shards
		if f.ResizeTo > width {
			width = f.ResizeTo
		}
		switch phase {
		case "before-quiesce":
			width = f.Shards
		case "after-flip":
			width = f.ResizeTo
		}
		if rks < 0 || rks >= int64(width) {
			return errAt(line, "key \"rebalance-kill-shard\": no shard %d alive at %s (want [0, %d))", rks, phase, width)
		}
		f.RebalanceKillShard = int(rks)
	}
	if hasPh && !hasRKS {
		return errAt(phLine, "key \"rebalance-kill-phase\" requires \"rebalance-kill-shard\"")
	}

	tn, err := d.mapping("tenants")
	if err != nil {
		return err
	}
	if tn != nil {
		rate, line, ok, err := tn.floatVal("rate")
		if err != nil {
			return err
		}
		if !ok {
			return errAt(tn.n.Line, "tenants: missing required key \"rate\"")
		}
		if rate <= 0 {
			return errAt(line, "key \"rate\": messages per second must be > 0, got %v", rate)
		}
		f.TenantRate = rate
		burst, line, ok, err := tn.intVal("burst")
		if err != nil {
			return err
		}
		if ok {
			if burst <= 0 {
				return errAt(line, "key \"burst\": bucket depth must be > 0, got %d", burst)
			}
			f.TenantBurst = int(burst)
		}
		if err := tn.finish("section \"tenants\""); err != nil {
			return err
		}
	}

	se, line, ok, err := d.intVal("snapshot-every")
	if err != nil {
		return err
	}
	if ok {
		if se <= 0 {
			return errAt(line, "key \"snapshot-every\": must be > 0, got %d", se)
		}
		f.SnapshotEvery = int(se)
	}
	fs, line, ok, err := d.str("fsync")
	if err != nil {
		return err
	}
	if ok {
		switch fs {
		case "always", "interval", "off":
			f.Fsync = fs
		default:
			return errAt(line, "key \"fsync\": unknown policy %q (always, interval, off)", fs)
		}
	}
	return d.finish("section \"fleet\"")
}

func decodeExpect(d *dec, sp *Spec) error {
	e := &sp.Expect
	e.MinFindings, e.MaxFindings = Unset, Unset
	e.MinCulprits, e.MaxCulprits = Unset, Unset
	e.MinVictims = Unset
	e.MinConfidence, e.MaxConfidence = Unset, Unset
	e.Precision, e.Recall = Unset, Unset
	e.MinPrecision, e.MinRecall = Unset, Unset

	outcome, line, ok, err := d.str("outcome")
	if err != nil {
		return err
	}
	if ok {
		switch outcome {
		case "TP", "FP", "FN":
			e.Outcome = outcome
		default:
			return errAt(line, "key \"outcome\": unknown outcome %q (TP, FP, FN)", outcome)
		}
	}

	comp, _, ok, err := d.boolVal("completed")
	if err != nil {
		return err
	}
	if ok {
		e.Completed = &comp
	}

	types, err := d.sequence("anomaly-types")
	if err != nil {
		return err
	}
	if types != nil {
		for _, item := range types.Items {
			sc, err := scalarOf(item, "anomaly-types")
			if err != nil {
				return err
			}
			if !KnownAnomalyType(sc.Value) {
				return errAt(sc.Line, "key \"anomaly-types\": unknown anomaly type %q (%s)", sc.Value, anomalyTypeNames())
			}
			e.AnomalyTypes = append(e.AnomalyTypes, sc.Value)
		}
	}

	count := func(key string, dst *int) error {
		v, line, ok, err := d.intVal(key)
		if err != nil {
			return err
		}
		if ok {
			if v < 0 {
				return errAt(line, "key %q: count must be >= 0, got %d", key, v)
			}
			*dst = int(v)
		}
		return nil
	}
	frac := func(key string, dst *float64) error {
		v, line, ok, err := d.floatVal(key)
		if err != nil {
			return err
		}
		if ok {
			if v < 0 || v > 1 {
				return errAt(line, "key %q: must be in [0, 1], got %v", key, v)
			}
			*dst = v
		}
		return nil
	}
	boolKey := func(key string, dst *bool) error {
		v, _, ok, err := d.boolVal(key)
		if err != nil {
			return err
		}
		if ok {
			*dst = v
		}
		return nil
	}
	for _, step := range []error{
		count("min-findings", &e.MinFindings),
		count("max-findings", &e.MaxFindings),
		boolKey("culprits-include-injected", &e.CulpritsIncludeInjected),
		count("min-culprits", &e.MinCulprits),
		count("max-culprits", &e.MaxCulprits),
		count("min-victims", &e.MinVictims),
		boolKey("victims-are-collective", &e.VictimsAreCollective),
		frac("min-confidence", &e.MinConfidence),
		frac("max-confidence", &e.MaxConfidence),
		boolKey("root-localized", &e.RootLocalized),
		frac("precision", &e.Precision),
		frac("recall", &e.Recall),
		frac("min-precision", &e.MinPrecision),
		frac("min-recall", &e.MinRecall),
	} {
		if step != nil {
			return step
		}
	}
	return d.finish("section \"expect\"")
}

// validate applies cross-field rules after decoding.
func validate(sp *Spec, expectLine int) error {
	s := sp.Scenario
	if len(s.Flows) > 0 {
		switch s.Anomaly {
		case scenario.Contention, scenario.Incast, scenario.Clean:
		default:
			return errAt(s.Flows[0].Line, "explicit flows are only supported for flow-contention, incast, and clean (anomaly is %s)", s.Anomaly)
		}
	}
	if (sp.Mode == Analyzerd || sp.Mode == Fleet) && s.MultiSeed {
		return errAt(expectLine, "mode %s requires a single seed (use \"seed:\", not \"seeds:\")", sp.Mode)
	}

	e := sp.Expect
	hasAggregate := e.Precision != Unset || e.Recall != Unset ||
		e.MinPrecision != Unset || e.MinRecall != Unset
	if hasAggregate && !s.MultiSeed {
		return errAt(expectLine, "aggregate expectations (precision/recall) require a \"seeds:\" list")
	}
	hasAny := hasAggregate || e.Outcome != "" || e.Completed != nil ||
		len(e.AnomalyTypes) > 0 ||
		e.MinFindings != Unset || e.MaxFindings != Unset ||
		e.CulpritsIncludeInjected ||
		e.MinCulprits != Unset || e.MaxCulprits != Unset ||
		e.MinVictims != Unset || e.VictimsAreCollective ||
		e.MinConfidence != Unset || e.MaxConfidence != Unset ||
		e.RootLocalized
	if !hasAny && sp.Mode == InProcess {
		return errAt(expectLine, "section \"expect\" declares no assertions")
	}
	if e.RootLocalized && s.Anomaly != scenario.PFCStorm && s.Anomaly != scenario.PFCBackpressure {
		return errAt(expectLine, "root-localized only applies to pfc-storm and pfc-backpressure (anomaly is %s)", s.Anomaly)
	}
	if e.MinFindings != Unset && e.MaxFindings != Unset && e.MinFindings > e.MaxFindings {
		return errAt(expectLine, "min-findings (%d) exceeds max-findings (%d)", e.MinFindings, e.MaxFindings)
	}
	if e.MinCulprits != Unset && e.MaxCulprits != Unset && e.MinCulprits > e.MaxCulprits {
		return errAt(expectLine, "min-culprits (%d) exceeds max-culprits (%d)", e.MinCulprits, e.MaxCulprits)
	}
	if e.MinConfidence != Unset && e.MaxConfidence != Unset && e.MinConfidence > e.MaxConfidence {
		return errAt(expectLine, "min-confidence (%v) exceeds max-confidence (%v)", e.MinConfidence, e.MaxConfidence)
	}
	return nil
}

// ParseAnomaly maps an anomaly name to its kind.
func ParseAnomaly(s string) (scenario.AnomalyKind, bool) {
	for _, k := range anomalyKinds {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

var anomalyKinds = []scenario.AnomalyKind{
	scenario.Contention, scenario.Incast, scenario.PFCStorm,
	scenario.PFCBackpressure, scenario.Loop, scenario.LoadImbalance,
	scenario.Clean,
}

func anomalyNames() string {
	out := ""
	for i, k := range anomalyKinds {
		if i > 0 {
			out += ", "
		}
		out += k.String()
	}
	return out
}

// ParseSystem maps a system name to its kind.
func ParseSystem(s string) (scenario.SystemKind, bool) {
	for _, k := range []scenario.SystemKind{
		scenario.Vedrfolnir, scenario.HawkeyeMaxR, scenario.HawkeyeMinR, scenario.FullPolling,
	} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// ParseOp maps a collective op name.
func ParseOp(s string) (collective.Op, bool) {
	for _, k := range []collective.Op{collective.AllGather, collective.ReduceScatter, collective.AllReduce} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// ParseAlg maps an algorithm name.
func ParseAlg(s string) (collective.Algorithm, bool) {
	for _, k := range []collective.Algorithm{collective.Ring, collective.HalvingDoubling} {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// anomalyTypeNames lists the diagnose.AnomalyType names assertable in
// expect.anomaly-types.
var knownAnomalyTypes = []string{
	"flow-contention", "incast", "pfc-backpressure", "pfc-storm",
	"forwarding-loop", "pfc-deadlock",
}

// KnownAnomalyType reports whether s names a diagnose.AnomalyType.
func KnownAnomalyType(s string) bool {
	for _, t := range knownAnomalyTypes {
		if t == s {
			return true
		}
	}
	return false
}

func anomalyTypeNames() string {
	out := ""
	for i, t := range knownAnomalyTypes {
		if i > 0 {
			out += ", "
		}
		out += t
	}
	return out
}
