// Package spec is the declarative scenario layer of the vedrtest
// conformance subsystem: a stdlib-only parser for a documented YAML subset
// plus the typed scenario-spec schema it decodes into. A spec file
// declares a topology, a collective workload, an anomaly construction (or
// an explicit background-flow timeline), detection parameters, a chaos
// configuration, an execution mode (in-process or end-to-end through a
// real vedranalyzerd process), and the expected-diagnosis assertions the
// runner (internal/vedrtest) diffs the actual diagnosis against.
//
// The YAML subset (DESIGN.md §14) covers what scenario specs need and
// nothing more: block mappings, block sequences (of scalars or mappings),
// inline flow sequences of scalars ([a, b, c]), plain and quoted scalars,
// and '#' comments. Anchors, aliases, multi-document streams, multi-line
// scalars, and flow mappings are out — a spec that needs them is a spec
// that should be two specs. Every parse and validation error carries the
// 1-based source line, so corpus failures are debuggable from the message
// alone.
package spec

import (
	"fmt"
	"strings"
)

// NodeKind discriminates the parse-tree node types.
type NodeKind uint8

// Node kinds.
const (
	// ScalarNode is a leaf value (plain or quoted).
	ScalarNode NodeKind = iota
	// MappingNode is an ordered key→node table.
	MappingNode
	// SequenceNode is an ordered item list.
	SequenceNode
)

func (k NodeKind) String() string {
	switch k {
	case ScalarNode:
		return "scalar"
	case MappingNode:
		return "mapping"
	case SequenceNode:
		return "sequence"
	default:
		return fmt.Sprintf("node(%d)", uint8(k))
	}
}

// MapEntry is one key/value pair of a mapping, in source order.
type MapEntry struct {
	Key   string
	Line  int
	Value *Node
}

// Node is one parse-tree node. Line is the 1-based source line the node
// starts on.
type Node struct {
	Kind NodeKind
	Line int

	// Value holds a ScalarNode's text, unquoted and unescaped. Quoted
	// records whether the source was quoted (a quoted scalar is always a
	// string, never re-interpreted as a number or bool).
	Value  string
	Quoted bool

	// Entries holds a MappingNode's pairs in source order.
	Entries []MapEntry

	// Items holds a SequenceNode's elements in source order.
	Items []*Node
}

// Get returns the value node for key in a mapping, or nil.
func (n *Node) Get(key string) *Node {
	for _, e := range n.Entries {
		if e.Key == key {
			return e.Value
		}
	}
	return nil
}

// Error is a line-annotated spec error. Line 0 means the error is not tied
// to a source line (an empty document, an I/O failure upstream).
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
	}
	return e.Msg
}

func errAt(line int, format string, args ...any) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// srcLine is one significant (non-blank, comment-stripped) source line.
type srcLine struct {
	indent int
	text   string
	num    int
}

// Parse parses one document of the YAML subset into a node tree. The root
// must be a mapping (scenario specs are key: value documents).
func Parse(data []byte) (*Node, error) {
	lines, err := splitLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, &Error{Msg: "empty document"}
	}
	p := &parser{lines: lines}
	root, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, errAt(l.num, "unexpected content %q after the document root (indentation decreased below the root level?)", l.text)
	}
	if root.Kind != MappingNode {
		return nil, errAt(root.Line, "document root must be a mapping, got a %s", root.Kind)
	}
	return root, nil
}

// splitLines strips comments and blank lines and measures indentation.
// Tabs in indentation are rejected (the classic YAML trap).
func splitLines(data []byte) ([]srcLine, error) {
	var out []srcLine
	for i, raw := range strings.Split(string(data), "\n") {
		num := i + 1
		line := strings.TrimSuffix(raw, "\r")
		text, err := stripComment(line, num)
		if err != nil {
			return nil, err
		}
		indent := 0
		for indent < len(text) && text[indent] == ' ' {
			indent++
		}
		if indent < len(text) && text[indent] == '\t' {
			return nil, errAt(num, "tab in indentation; use spaces")
		}
		body := strings.TrimRight(text[indent:], " \t")
		if body == "" {
			continue
		}
		out = append(out, srcLine{indent: indent, text: body, num: num})
	}
	return out, nil
}

// stripComment removes a trailing '#' comment, respecting quotes. A '#'
// starts a comment at line start or after whitespace; a quote only opens
// at a value-start position (so an apostrophe inside a plain scalar —
// "the paper's" — is just text).
func stripComment(line string, num int) (string, error) {
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			if c == '\\' && quote == '"' {
				i++ // skip the escaped character
			} else if c == quote {
				quote = 0
			}
		case (c == '\'' || c == '"') && quoteOpens(line, i):
			quote = c
		case c == '#' && (i == 0 || line[i-1] == ' ' || line[i-1] == '\t'):
			return line[:i], nil
		}
	}
	if quote != 0 {
		return "", errAt(num, "unterminated %q-quoted string", string(quote))
	}
	return line, nil
}

// quoteOpens reports whether a quote character at position i starts a
// quoted scalar: at line start, or after whitespace, an inline-sequence
// opener, or an item separator.
func quoteOpens(s string, i int) bool {
	if i == 0 {
		return true
	}
	switch s[i-1] {
	case ' ', '\t', '[', ',':
		return true
	}
	return false
}

type parser struct {
	lines []srcLine
	pos   int
}

func (p *parser) peek() (srcLine, bool) {
	if p.pos >= len(p.lines) {
		return srcLine{}, false
	}
	return p.lines[p.pos], true
}

// parseBlock parses one block (mapping or sequence) whose lines are
// indented at least minIndent; the first line's indent fixes the block's
// level. It stops at the first line indented shallower than the block.
func (p *parser) parseBlock(minIndent int) (*Node, error) {
	first, ok := p.peek()
	if !ok || first.indent < minIndent {
		return nil, errAt(lineAfter(p.lines, p.pos), "expected an indented block")
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.parseSequence(first.indent)
	}
	return p.parseMapping(first.indent)
}

// lineAfter reports the line number an expected-but-missing block would
// have started on (for error messages at end of input).
func lineAfter(lines []srcLine, pos int) int {
	if pos < len(lines) {
		return lines[pos].num
	}
	if len(lines) > 0 {
		return lines[len(lines)-1].num + 1
	}
	return 1
}

func (p *parser) parseMapping(indent int) (*Node, error) {
	node := &Node{Kind: MappingNode, Line: p.lines[p.pos].num}
	seen := make(map[string]int)
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return node, nil
		}
		if l.indent > indent {
			return nil, errAt(l.num, "unexpected indentation (%d spaces, block is at %d)", l.indent, indent)
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, errAt(l.num, "sequence item in a mapping block")
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[key]; dup {
			return nil, errAt(l.num, "duplicate key %q (first used on line %d)", key, prev)
		}
		seen[key] = l.num
		p.pos++
		var val *Node
		if rest == "" {
			next, ok := p.peek()
			if !ok || next.indent <= indent {
				return nil, errAt(l.num, "key %q has no value (use an indented block or an inline value)", key)
			}
			val, err = p.parseBlock(indent + 1)
		} else {
			val, err = parseValue(rest, l.num)
		}
		if err != nil {
			return nil, err
		}
		node.Entries = append(node.Entries, MapEntry{Key: key, Line: l.num, Value: val})
	}
}

func (p *parser) parseSequence(indent int) (*Node, error) {
	node := &Node{Kind: SequenceNode, Line: p.lines[p.pos].num}
	for {
		l, ok := p.peek()
		if !ok || l.indent < indent {
			return node, nil
		}
		if l.indent > indent {
			return nil, errAt(l.num, "unexpected indentation (%d spaces, sequence is at %d)", l.indent, indent)
		}
		if !strings.HasPrefix(l.text, "- ") && l.text != "-" {
			return nil, errAt(l.num, "expected a sequence item (\"- ...\") at this indentation")
		}
		var item *Node
		var err error
		switch rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " "); {
		case rest == "":
			// "-" alone: the item is the following deeper-indented block.
			p.pos++
			item, err = p.parseBlock(indent + 1)
		case isKeyLine(rest):
			// "- key: value": a mapping item. The dash plus space occupy
			// two columns, so continuation keys sit at indent+2; rewrite
			// this line in place as the mapping's first line and let the
			// mapping parser consume it and its continuations.
			p.lines[p.pos] = srcLine{indent: indent + 2, text: rest, num: l.num}
			item, err = p.parseMapping(indent + 2)
		default:
			p.pos++
			item, err = parseValue(rest, l.num)
		}
		if err != nil {
			return nil, err
		}
		node.Items = append(node.Items, item)
	}
}

// splitKey splits "key: value" / "key:"; the key must be a plain
// identifier ([A-Za-z0-9_-]+).
func splitKey(l srcLine) (key, rest string, err error) {
	i := strings.IndexByte(l.text, ':')
	if i < 0 {
		return "", "", errAt(l.num, "expected \"key: value\", got %q", l.text)
	}
	key = l.text[:i]
	if !isPlainKey(key) {
		return "", "", errAt(l.num, "invalid key %q (keys are [A-Za-z0-9_-]+)", key)
	}
	rest = strings.TrimLeft(l.text[i+1:], " ")
	if rest == "" && len(l.text) > i+1 && !strings.HasPrefix(l.text[i+1:], " ") {
		return "", "", errAt(l.num, "missing space after %q:", key)
	}
	return key, rest, nil
}

// isKeyLine reports whether a sequence item's inline content starts a
// mapping ("key: value" or "key:").
func isKeyLine(s string) bool {
	i := strings.IndexByte(s, ':')
	if i <= 0 || !isPlainKey(s[:i]) {
		return false
	}
	return i == len(s)-1 || s[i+1] == ' '
}

func isPlainKey(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// parseValue parses an inline value: a flow sequence "[a, b]" or a scalar.
func parseValue(s string, line int) (*Node, error) {
	if strings.HasPrefix(s, "[") {
		return parseFlowSeq(s, line)
	}
	if strings.HasPrefix(s, "{") {
		return nil, errAt(line, "flow mappings ({...}) are not part of the subset; use an indented block")
	}
	val, quoted, err := unquote(s, line)
	if err != nil {
		return nil, err
	}
	return &Node{Kind: ScalarNode, Line: line, Value: val, Quoted: quoted}, nil
}

// parseFlowSeq parses "[a, b, c]" into a sequence of scalars.
func parseFlowSeq(s string, line int) (*Node, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, errAt(line, "inline sequence %q does not end with ']'", s)
	}
	node := &Node{Kind: SequenceNode, Line: line}
	body := s[1 : len(s)-1]
	if strings.TrimSpace(body) == "" {
		return node, nil
	}
	items, err := splitFlowItems(body, line)
	if err != nil {
		return nil, err
	}
	for _, item := range items {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, errAt(line, "empty item in inline sequence %q", s)
		}
		if strings.HasPrefix(item, "[") || strings.HasPrefix(item, "{") {
			return nil, errAt(line, "nested inline collections are not part of the subset")
		}
		val, quoted, err := unquote(item, line)
		if err != nil {
			return nil, err
		}
		node.Items = append(node.Items, &Node{Kind: ScalarNode, Line: line, Value: val, Quoted: quoted})
	}
	return node, nil
}

// splitFlowItems splits an inline-sequence body on commas outside quotes.
func splitFlowItems(body string, line int) ([]string, error) {
	var items []string
	var quote byte
	start := 0
	for i := 0; i < len(body); i++ {
		c := body[i]
		switch {
		case quote != 0:
			if c == '\\' && quote == '"' {
				i++
			} else if c == quote {
				quote = 0
			}
		case (c == '\'' || c == '"') && quoteOpens(body, i):
			quote = c
		case c == ',':
			items = append(items, body[start:i])
			start = i + 1
		}
	}
	if quote != 0 {
		return nil, errAt(line, "unterminated %q-quoted string in inline sequence", string(quote))
	}
	return append(items, body[start:]), nil
}

// unquote strips surrounding quotes and processes double-quote escapes.
func unquote(s string, line int) (val string, quoted bool, err error) {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		return s[1 : len(s)-1], true, nil
	}
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		var b strings.Builder
		body := s[1 : len(s)-1]
		for i := 0; i < len(body); i++ {
			c := body[i]
			if c != '\\' {
				b.WriteByte(c)
				continue
			}
			i++
			if i >= len(body) {
				return "", false, errAt(line, "dangling escape at end of %q", s)
			}
			switch body[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				return "", false, errAt(line, "unsupported escape \\%c (subset allows \\\" \\\\ \\n \\t \\r)", body[i])
			}
		}
		return b.String(), true, nil
	}
	if strings.HasPrefix(s, "'") || strings.HasPrefix(s, "\"") {
		return "", false, errAt(line, "unterminated quoted scalar %q", s)
	}
	return s, false, nil
}
