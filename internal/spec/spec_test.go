package spec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
)

// TestFixtures walks testdata: good_* must parse, bad_* must fail with the
// error substring declared in the file's first-line "# want:" comment.
func TestFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no fixtures found")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			sp, perr := ParseSpec(data)
			base := filepath.Base(file)
			switch {
			case strings.HasPrefix(base, "good_"):
				if perr != nil {
					t.Fatalf("expected success, got: %v", perr)
				}
				if len(sp.Scenario.Seeds) == 0 {
					t.Fatal("validated spec has no seeds")
				}
			case strings.HasPrefix(base, "bad_"):
				firstLine, _, _ := strings.Cut(string(data), "\n")
				want := strings.TrimSpace(strings.TrimPrefix(firstLine, "# want:"))
				if want == "" || !strings.HasPrefix(firstLine, "# want:") {
					t.Fatalf("bad_ fixture must start with a \"# want: <substring>\" comment, got %q", firstLine)
				}
				if perr == nil {
					t.Fatalf("expected an error containing %q, got success", want)
				}
				if !strings.Contains(perr.Error(), want) {
					t.Fatalf("error %q does not contain %q", perr.Error(), want)
				}
			default:
				t.Fatalf("fixture %s is neither good_* nor bad_*", base)
			}
		})
	}
}

func TestDefaults(t *testing.T) {
	sp, err := ParseSpec([]byte("scenario:\n  anomaly: clean\nexpect:\n  outcome: TP\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := sp.Scenario
	if sp.Mode != InProcess {
		t.Errorf("Mode = %v, want in-process", sp.Mode)
	}
	if s.Topology != "paper-fattree" {
		t.Errorf("Topology = %q", s.Topology)
	}
	if len(s.Seeds) != 1 || s.Seeds[0] != 1 || s.MultiSeed {
		t.Errorf("Seeds = %v (multi=%v), want [1]", s.Seeds, s.MultiSeed)
	}
	if s.System != scenario.Vedrfolnir || s.ScaleDen != 90 || s.Ranks != 8 {
		t.Errorf("system/scale/ranks defaults wrong: %+v", s)
	}
	e := sp.Expect
	if e.MinFindings != Unset || e.MaxFindings != Unset || e.MinConfidence != Unset ||
		e.Precision != Unset || e.MinRecall != Unset || e.MinVictims != Unset {
		t.Errorf("numeric expectations should default to Unset: %+v", e)
	}
	if e.Outcome != "TP" || e.Completed != nil {
		t.Errorf("expect decoded wrong: %+v", e)
	}
}

func TestFullDecoding(t *testing.T) {
	sp, err := Load(filepath.Join("testdata", "good_full.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "full" || !strings.Contains(sp.Description, "# not a comment") {
		t.Errorf("name/description: %q / %q", sp.Name, sp.Description)
	}
	s := sp.Scenario
	if s.Anomaly != scenario.Incast || !s.MultiSeed || len(s.Seeds) != 3 || s.Seeds[2] != 2 {
		t.Errorf("scenario: %+v", s)
	}
	if s.ScaleDen != 30 {
		t.Errorf("ScaleDen = %v", s.ScaleDen)
	}
	p := sp.Params
	if p.RTTFactor != 1.5 || p.MaxDetectPerStep != 5 ||
		p.FixedRTTThreshold != simtime.Duration(10*time.Millisecond) || !p.Unrestricted {
		t.Errorf("params: %+v", p)
	}
	c := sp.Chaos
	if c.NotifyDropRate != 0.01 || c.PollLossRate != 0.01 || c.PortLossRate != 0.01 {
		t.Errorf("loss shorthand not folded in: %+v", c)
	}
	if c.Seed != 7 || c.NotifyDelay != simtime.Duration(time.Millisecond) ||
		c.MonitorKillRate != 0.5 || c.MonitorDownFor != simtime.Duration(2*time.Millisecond) {
		t.Errorf("chaos overlay wrong: %+v", c)
	}
	e := sp.Expect
	if e.MinCulprits != 3 || e.MaxFindings != 8 || e.MinConfidence != 0.5 ||
		e.MaxConfidence != 1 || e.MinPrecision != 0.8 || !e.VictimsAreCollective {
		t.Errorf("expect: %+v", e)
	}
	if len(e.AnomalyTypes) != 1 || e.AnomalyTypes[0] != "incast" {
		t.Errorf("AnomalyTypes = %v", e.AnomalyTypes)
	}
}

func TestAnalyzerdDefaults(t *testing.T) {
	sp, err := Load(filepath.Join("testdata", "good_analyzerd.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Mode != Analyzerd {
		t.Fatalf("Mode = %v", sp.Mode)
	}
	a := sp.Analyzerd
	if a.KillAfter != 12 || a.SnapshotEvery != 4 || a.Fsync != "always" {
		t.Fatalf("analyzerd: %+v", a)
	}

	// Defaults fill in when the section is omitted entirely.
	sp2, err := ParseSpec([]byte("mode: analyzerd\nscenario:\n  anomaly: clean\nexpect:\n  outcome: TP\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sp2.Analyzerd.SnapshotEvery != 4 || sp2.Analyzerd.Fsync != "always" || sp2.Analyzerd.KillAfter != 0 {
		t.Fatalf("analyzerd defaults: %+v", sp2.Analyzerd)
	}

	// The section is rejected outside analyzerd mode.
	_, err = ParseSpec([]byte("scenario:\n  anomaly: clean\nanalyzerd:\n  kill-after: 3\nexpect:\n  outcome: TP\n"))
	if err == nil || !strings.Contains(err.Error(), "requires mode: analyzerd") {
		t.Fatalf("err = %v", err)
	}
}

func TestFleetDecoding(t *testing.T) {
	sp, err := ParseSpec([]byte("mode: fleet\nscenario:\n  anomaly: clean\nfleet:\n  shards: 3\n  kill-shard: 1\n  kill-shard-after: 10\nexpect:\n  outcome: TP\n"))
	if err != nil {
		t.Fatal(err)
	}
	f := sp.Fleet
	if f.Shards != 3 || f.KillShard != 1 || f.KillAfter != 10 || f.HoldShard != Unset {
		t.Fatalf("fleet: %+v", f)
	}
	// Defaults fill in for the durability knobs.
	if f.SnapshotEvery != 4 || f.Fsync != "always" || f.Replicas != 0 {
		t.Fatalf("fleet defaults: %+v", f)
	}

	sp2, err := ParseSpec([]byte("mode: fleet\nscenario:\n  anomaly: clean\nfleet:\n  shards: 2\n  hold-down-shard: 0\n  replicas: 16\n  snapshot-every: 8\n  fsync: off\nexpect:\n  outcome: TP\n"))
	if err != nil {
		t.Fatal(err)
	}
	f2 := sp2.Fleet
	if f2.Shards != 2 || f2.HoldShard != 0 || f2.KillShard != Unset ||
		f2.Replicas != 16 || f2.SnapshotEvery != 8 || f2.Fsync != "off" {
		t.Fatalf("fleet: %+v", f2)
	}

	sp3, err := ParseSpec([]byte("mode: fleet\nscenario:\n  anomaly: clean\nfleet:\n" +
		"  shards: 2\n  resize-to: 3\n  resize-after: 40\n" +
		"  rebalance-kill-phase: during-handoff\n  rebalance-kill-shard: 1\n" +
		"  tenants:\n    rate: 25.5\n    burst: 4\n" +
		"expect:\n  outcome: TP\n"))
	if err != nil {
		t.Fatal(err)
	}
	f3 := sp3.Fleet
	if f3.ResizeTo != 3 || f3.ResizeAfter != 40 ||
		f3.RebalanceKillPhase != "during-handoff" || f3.RebalanceKillShard != 1 {
		t.Fatalf("fleet rebalance: %+v", f3)
	}
	if f3.TenantRate != 25.5 || f3.TenantBurst != 4 {
		t.Fatalf("fleet tenants: %+v", f3)
	}
	if f3.KillShard != Unset || f3.HoldShard != Unset {
		t.Fatalf("unset kill knobs leaked: %+v", f3)
	}
}

func TestFleetValidationErrors(t *testing.T) {
	fleet := func(body string) string {
		return "mode: fleet\nscenario:\n  anomaly: clean\nfleet:\n" + body + "expect:\n  outcome: TP\n"
	}
	cases := []struct{ name, src, want string }{
		{"section without mode", "scenario:\n  anomaly: clean\nfleet:\n  shards: 2\nexpect:\n  outcome: TP\n",
			`section "fleet" requires mode: fleet`},
		{"mode without section", "mode: fleet\nscenario:\n  anomaly: clean\nexpect:\n  outcome: TP\n",
			`mode fleet requires a "fleet" section`},
		{"missing shards", fleet("  fsync: always\n"), `fleet: missing required key "shards"`},
		{"shards too narrow", fleet("  shards: 1\n"), "fleet width must be in [2, 16], got 1"},
		{"shards too wide", fleet("  shards: 64\n"), "fleet width must be in [2, 16], got 64"},
		{"kill without after", fleet("  shards: 2\n  kill-shard: 0\n"), `key "kill-shard" requires "kill-shard-after"`},
		{"after without kill", fleet("  shards: 2\n  kill-shard-after: 5\n"), `key "kill-shard-after" requires "kill-shard"`},
		{"kill out of range", fleet("  shards: 2\n  kill-shard: 2\n  kill-shard-after: 5\n"),
			"shard index must be in [0, 2), got 2"},
		{"kill and hold", fleet("  shards: 2\n  kill-shard: 0\n  kill-shard-after: 5\n  hold-down-shard: 1\n"),
			`keys "kill-shard" and "hold-down-shard" are mutually exclusive`},
		{"hold out of range", fleet("  shards: 2\n  hold-down-shard: 7\n"), "shard index must be in [0, 2), got 7"},
		{"bad fsync", fleet("  shards: 2\n  fsync: sometimes\n"), `unknown policy "sometimes"`},
		{"bad replicas", fleet("  shards: 2\n  replicas: 0\n"), "must be > 0 vnodes per shard"},
		{"unknown key", fleet("  shards: 2\n  sharding: ring\n"), `section "fleet"`},
		{"multi-seed", "mode: fleet\nscenario:\n  anomaly: clean\n  seeds: [1, 2]\nfleet:\n  shards: 2\nexpect:\n  outcome: TP\n",
			"mode fleet requires a single seed"},
		{"resize to same width", fleet("  shards: 3\n  resize-to: 3\n"),
			`target width 3 equals "shards"`},
		{"resize too wide", fleet("  shards: 2\n  resize-to: 64\n"), "target width must be in [1, 16]"},
		{"resize-after without resize-to", fleet("  shards: 2\n  resize-after: 5\n"),
			`key "resize-after" requires "resize-to"`},
		{"resize and hold", fleet("  shards: 3\n  resize-to: 2\n  hold-down-shard: 0\n"),
			`keys "resize-to" and "hold-down-shard" are mutually exclusive`},
		{"resize and kill-shard", fleet("  shards: 2\n  kill-shard: 0\n  kill-shard-after: 5\n  resize-to: 3\n"),
			`keys "resize-to" and "kill-shard" are mutually exclusive`},
		{"kill phase without resize", fleet("  shards: 2\n  rebalance-kill-phase: after-flip\n  rebalance-kill-shard: 0\n"),
			`key "rebalance-kill-phase" requires "resize-to"`},
		{"unknown kill phase", fleet("  shards: 2\n  resize-to: 3\n  rebalance-kill-phase: mid-air\n  rebalance-kill-shard: 0\n"),
			`unknown cut point "mid-air"`},
		{"kill phase without shard", fleet("  shards: 2\n  resize-to: 3\n  rebalance-kill-phase: after-flip\n"),
			`key "rebalance-kill-phase" requires "rebalance-kill-shard"`},
		{"kill shard without phase", fleet("  shards: 2\n  resize-to: 3\n  rebalance-kill-shard: 0\n"),
			`key "rebalance-kill-shard" requires "rebalance-kill-phase"`},
		{"grow target dead before quiesce", fleet("  shards: 2\n  resize-to: 3\n  rebalance-kill-phase: before-quiesce\n  rebalance-kill-shard: 2\n"),
			"no shard 2 alive at before-quiesce"},
		{"shrink donor dead after flip", fleet("  shards: 3\n  resize-to: 2\n  rebalance-kill-phase: after-flip\n  rebalance-kill-shard: 2\n"),
			"no shard 2 alive at after-flip"},
		{"tenants without rate", fleet("  shards: 2\n  tenants:\n    burst: 4\n"),
			`tenants: missing required key "rate"`},
		{"zero tenant rate", fleet("  shards: 2\n  tenants:\n    rate: 0\n"),
			`key "rate": messages per second must be > 0`},
		{"bad tenant burst", fleet("  shards: 2\n  tenants:\n    rate: 5\n    burst: 0\n"),
			`key "burst": bucket depth must be > 0`},
		{"unknown tenants key", fleet("  shards: 2\n  tenants:\n    rate: 5\n    color: blue\n"),
			`section "tenants"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.src))
			if err == nil {
				t.Fatalf("expected an error containing %q, got success", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestFlowDecoding(t *testing.T) {
	sp, err := Load(filepath.Join("testdata", "good_flows.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	fl := sp.Scenario.Flows
	if len(fl) != 2 {
		t.Fatalf("flows = %+v", fl)
	}
	if fl[0].Src != 8 || fl[0].Dst != 3 || fl[0].MB != 200 || fl[0].StartMS != 10 {
		t.Errorf("flow 0: %+v", fl[0])
	}
	if fl[1].StartMS != 0 {
		t.Errorf("flow 1 start should default to 0: %+v", fl[1])
	}
	if fl[0].Line != 6 || fl[1].Line != 10 {
		t.Errorf("flow lines = %d, %d, want 6, 10", fl[0].Line, fl[1].Line)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"missing scenario", "expect:\n  outcome: TP\n", `missing required section "scenario"`},
		{"missing anomaly", "scenario:\n  seed: 1\nexpect:\n  outcome: TP\n", `missing required key "anomaly"`},
		{"missing expect", "scenario:\n  anomaly: clean\n", `missing required section "expect"`},
		{"unknown anomaly", "scenario:\n  anomaly: gremlins\nexpect:\n  outcome: TP\n", `unknown anomaly "gremlins"`},
		{"unknown mode", "mode: remote\nscenario:\n  anomaly: clean\nexpect:\n  outcome: TP\n", `unknown mode "remote"`},
		{"seed and seeds", "scenario:\n  anomaly: clean\n  seed: 1\n  seeds: [2]\nexpect:\n  outcome: TP\n", "mutually exclusive"},
		{"odd ranks", "scenario:\n  anomaly: clean\n  ranks: 7\nexpect:\n  outcome: TP\n", "must be even"},
		{"bad rate", "scenario:\n  anomaly: clean\nchaos:\n  loss: 1.5\nexpect:\n  outcome: TP\n", "rate must be in [0, 1]"},
		{"quoted number", "scenario:\n  anomaly: clean\n  seed: \"3\"\nexpect:\n  outcome: TP\n", "quoted scalar where a number"},
		{"min over max", "scenario:\n  anomaly: clean\nexpect:\n  min-findings: 3\n  max-findings: 1\n", "min-findings (3) exceeds max-findings (1)"},
		{"unknown anomaly type", "scenario:\n  anomaly: clean\nexpect:\n  anomaly-types: [gremlins]\n", `unknown anomaly type "gremlins"`},
		{"scalar scenario", "scenario: clean\nexpect:\n  outcome: TP\n", "expected a mapping, got a scalar"},
		{"bad duration", "scenario:\n  anomaly: clean\nparams:\n  fixed-rtt-threshold: fast\nexpect:\n  outcome: TP\n", "cannot parse \"fast\" as a duration"},
		{"bad host", "scenario:\n  anomaly: clean\n  flows:\n    - src: 22\n      dst: 3\n      mb: 10\nexpect:\n  outcome: TP\n", "host ID must be in [0, 15]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.src))
			if err == nil {
				t.Fatalf("expected an error containing %q, got success", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err.Error(), tc.want)
			}
		})
	}
}
