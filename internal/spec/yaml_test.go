package spec

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	n, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return n
}

func wantErr(t *testing.T, src, substr string) *Error {
	t.Helper()
	_, err := Parse([]byte(src))
	if err == nil {
		t.Fatalf("Parse(%q): expected an error containing %q, got nil", src, substr)
	}
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("Parse(%q): error is %T, want *Error", src, err)
	}
	if !strings.Contains(se.Error(), substr) {
		t.Fatalf("Parse(%q): error %q does not contain %q", src, se.Error(), substr)
	}
	return se
}

func TestParseMappingTree(t *testing.T) {
	n := mustParse(t, `
name: demo           # trailing comment
scenario:
  anomaly: incast
  nested:
    deep: 42
`)
	if got := n.Get("name").Value; got != "demo" {
		t.Fatalf("name = %q, want demo", got)
	}
	sc := n.Get("scenario")
	if sc.Kind != MappingNode || sc.Line != 4 {
		t.Fatalf("scenario kind=%v line=%d, want mapping starting at line 4", sc.Kind, sc.Line)
	}
	if got := sc.Get("nested").Get("deep").Value; got != "42" {
		t.Fatalf("deep = %q, want 42", got)
	}
	if got := sc.Get("anomaly").Line; got != 4 {
		t.Fatalf("anomaly line = %d, want 4", got)
	}
}

func TestParseSequences(t *testing.T) {
	n := mustParse(t, `
seeds:
  - 1
  - 2
inline: [3, 4, 5]
empty: []
flows:
  - src: 8
    dst: 3
  - src: 12
    dst: 0
`)
	seeds := n.Get("seeds")
	if seeds.Kind != SequenceNode || len(seeds.Items) != 2 || seeds.Items[1].Value != "2" {
		t.Fatalf("block sequence mis-parsed: %+v", seeds)
	}
	inline := n.Get("inline")
	if len(inline.Items) != 3 || inline.Items[2].Value != "5" {
		t.Fatalf("inline sequence mis-parsed: %+v", inline)
	}
	if got := len(n.Get("empty").Items); got != 0 {
		t.Fatalf("empty inline sequence has %d items", got)
	}
	flows := n.Get("flows")
	if len(flows.Items) != 2 {
		t.Fatalf("flows has %d items, want 2", len(flows.Items))
	}
	first := flows.Items[0]
	if first.Kind != MappingNode || first.Get("src").Value != "8" || first.Get("dst").Value != "3" {
		t.Fatalf("mapping sequence item mis-parsed: %+v", first)
	}
	if got := flows.Items[1].Get("src").Line; got != 10 {
		t.Fatalf("second item src line = %d, want 10", got)
	}
}

func TestParseDashAloneItem(t *testing.T) {
	n := mustParse(t, "flows:\n  -\n    src: 1\n    dst: 2\n")
	item := n.Get("flows").Items[0]
	if item.Kind != MappingNode || item.Get("dst").Value != "2" {
		t.Fatalf("dash-alone item mis-parsed: %+v", item)
	}
}

func TestParseScalars(t *testing.T) {
	n := mustParse(t, `
plain: hello world
single: 'kept # not a comment'
double: "a\nb\t\"c\""
number: 3.5
hashless: "x#y"
`)
	cases := map[string]string{
		"plain":    "hello world",
		"single":   "kept # not a comment",
		"double":   "a\nb\t\"c\"",
		"number":   "3.5",
		"hashless": "x#y",
	}
	for key, want := range cases {
		if got := n.Get(key).Value; got != want {
			t.Errorf("%s = %q, want %q", key, got, want)
		}
	}
	if !n.Get("single").Quoted || n.Get("plain").Quoted {
		t.Fatal("Quoted flags wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
		line            int
	}{
		{"tab indent", "a: 1\n\tb: 2\n", "tab in indentation", 2},
		{"duplicate key", "a: 1\na: 2\n", `duplicate key "a"`, 2},
		{"dup reports first use", "a: 1\nb: 2\na: 3\n", "first used on line 1", 3},
		{"missing value", "a:\nb: 2\n", `key "a" has no value`, 1},
		{"bad key", "a b: 1\n", `invalid key "a b"`, 1},
		{"no colon", "just words\n", "expected \"key: value\"", 1},
		{"over-indent", "a: 1\n   b: 2\n", "unexpected indentation", 2},
		{"seq in mapping", "a: 1\n- b\n", "sequence item in a mapping block", 2},
		{"mapping in seq", "a:\n  - 1\n  b: 2\n", "expected a sequence item", 3},
		{"unterminated quote", "a: 'oops\n", "unterminated", 1},
		{"unterminated inline", "a: [1, 2\n", "does not end with ']'", 1},
		{"nested inline", "a: [[1], 2]\n", "nested inline collections", 1},
		{"flow mapping", "a: {b: 1}\n", "flow mappings", 1},
		{"bad escape", `a: "\q"` + "\n", `unsupported escape \q`, 1},
		{"root sequence", "- a\n- b\n", "document root must be a mapping", 1},
		{"content after root", "  a: 1\nb: 2\n", "unexpected content", 2},
		{"empty doc", "# only a comment\n\n", "empty document", 0},
		{"empty inline item", "a: [1, , 2]\n", "empty item", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			se := wantErr(t, tc.src, tc.want)
			if se.Line != tc.line {
				t.Fatalf("error line = %d, want %d (err: %v)", se.Line, tc.line, se)
			}
		})
	}
}

func TestParseCRLFAndComments(t *testing.T) {
	n := mustParse(t, "# header\r\na: 1\r\n\r\n  # indented comment\r\nb: 2\r\n")
	if n.Get("a").Value != "1" || n.Get("b").Value != "2" {
		t.Fatalf("CRLF document mis-parsed: %+v", n)
	}
	if got := n.Get("b").Line; got != 5 {
		t.Fatalf("b line = %d, want 5", got)
	}
}
