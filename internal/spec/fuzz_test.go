package spec

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSpecParse drives the parser+decoder with arbitrary bytes: it must
// never panic, every failure must be a line-annotated *Error, and every
// success must satisfy the post-validation invariants the runner relies on.
func FuzzSpecParse(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.yaml"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("a: [1, 'x', \"y\\n\"]\n"))
	f.Add([]byte("scenario:\n  anomaly: clean\n  flows:\n    - src: 1\n      dst: 2\n      mb: 5\nexpect:\n  outcome: TP\n"))
	f.Add([]byte("a:\r\n\t- b\n"))
	f.Add([]byte("key: \"unterminated\nnext: '#\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := ParseSpec(data)
		if err != nil {
			var se *Error
			if !errors.As(err, &se) {
				t.Fatalf("non-*Error error type %T: %v", err, err)
			}
			if se.Line < 0 {
				t.Fatalf("negative error line: %+v", se)
			}
			if sp != nil {
				t.Fatal("spec returned alongside an error")
			}
			return
		}
		if sp == nil {
			t.Fatal("nil spec with nil error")
		}
		if len(sp.Scenario.Seeds) == 0 {
			t.Fatal("validated spec has no seeds")
		}
		if sp.Scenario.Ranks < 2 || sp.Scenario.Ranks > 16 {
			t.Fatalf("validated ranks out of range: %d", sp.Scenario.Ranks)
		}
		if sp.Scenario.ScaleDen <= 0 {
			t.Fatalf("validated scale denominator not positive: %v", sp.Scenario.ScaleDen)
		}
	})
}
