package perf

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/scenario"
)

// fastConfig shrinks the simulation the same way the sweep and scenario
// test suites do, so a workload run fits in a unit test.
func fastConfig() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Scale = 1.0 / 360
	cfg.StepBytes = int64(1e6)
	cfg.CellSize = 16 << 10
	cfg.Fabric.PFCPauseThreshold = 64 << 10
	cfg.Fabric.PFCResumeThreshold = 32 << 10
	cfg.Fabric.ECNThreshold = 32 << 10
	return cfg
}

func TestLimited(t *testing.T) {
	cases := []struct {
		workers, gomaxprocs, numCPU int
		want                        bool
	}{
		{1, 1, 1, false},
		{2, 2, 2, false},
		{2, 1, 8, true}, // GOMAXPROCS capped below the pool
		{4, 4, 1, true}, // machine has fewer cores than the pool
		{8, 8, 16, false},
	}
	for _, c := range cases {
		if got := Limited(c.workers, c.gomaxprocs, c.numCPU); got != c.want {
			t.Errorf("Limited(%d,%d,%d) = %v, want %v",
				c.workers, c.gomaxprocs, c.numCPU, got, c.want)
		}
	}
}

func TestSweepRowJSONSchema(t *testing.T) {
	row := SweepRow{
		Bench: "BenchmarkSweepWorkers2", Workers: 2, GoMaxProcs: 1,
		Jobs: 8, Cases: 8, CasesPerSec: 1.5, NsPerCase: 100, AllocsPerCase: 7,
		BytesPerCase: 9, EnvironmentLimited: true,
	}
	raw, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	// The historical nine-field schema must survive, plus the annotation.
	for _, key := range []string{
		`"bench"`, `"workers"`, `"gomaxprocs"`, `"jobs"`, `"cases"`,
		`"cases_per_sec"`, `"ns_per_case"`, `"allocs_per_case"`,
		`"bytes_per_case"`, `"environment_limited":true`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("marshaled row missing %s: %s", key, raw)
		}
	}
	// Zero percentiles and a false annotation stay out of the document,
	// so historical rows round-trip unchanged.
	row.EnvironmentLimited = false
	raw, err = json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"environment_limited", "p50_case_ms"} {
		if strings.Contains(string(raw), key) {
			t.Errorf("zero-valued %s must be omitted: %s", key, raw)
		}
	}
	var back SweepRow
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, back) {
		t.Errorf("round trip mismatch: %+v vs %+v", row, back)
	}
}

func TestCompareSweep(t *testing.T) {
	base := &Baseline{
		Tolerance: Tolerance{AllocsFrac: 0.01, NsFactor: 3.0},
		Sweep: []SweepRow{
			{Workers: 1, AllocsPerCase: 100000, NsPerCase: 1000, CasesPerSec: 10},
		},
	}
	ok := []SweepRow{{Workers: 1, AllocsPerCase: 100999, NsPerCase: 2999, CasesPerSec: 3.4}}
	if v := base.CompareSweep(ok); len(v) != 0 {
		t.Fatalf("within tolerance but got violations: %v", v)
	}
	// Improvements never fail, however large.
	better := []SweepRow{{Workers: 1, AllocsPerCase: 1, NsPerCase: 1, CasesPerSec: 1e6}}
	if v := base.CompareSweep(better); len(v) != 0 {
		t.Fatalf("improvement flagged: %v", v)
	}
	// Rows absent from the baseline are ignored, not failed.
	novel := []SweepRow{{Workers: 9, AllocsPerCase: 1 << 40, NsPerCase: 1 << 40}}
	if v := base.CompareSweep(novel); len(v) != 0 {
		t.Fatalf("unbaselined worker count flagged: %v", v)
	}
	bad := []SweepRow{{Workers: 1, AllocsPerCase: 101001, NsPerCase: 3001, CasesPerSec: 3.2}}
	v := base.CompareSweep(bad)
	if len(v) != 3 {
		t.Fatalf("want 3 violations (allocs, ns, throughput), got %d: %v", len(v), v)
	}
	for _, want := range []string{"allocs/case", "ns/case", "cases/s"} {
		found := false
		for _, s := range v {
			if strings.Contains(s, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no violation mentions %s: %v", want, v)
		}
	}
}

func TestToleranceDefaults(t *testing.T) {
	got := Tolerance{}.WithDefaults()
	if got.AllocsFrac != 0.01 || got.NsFactor != 3.0 {
		t.Fatalf("zero tolerance defaults = %+v", got)
	}
	keep := Tolerance{AllocsFrac: 0.05, NsFactor: 5}
	if got := keep.WithDefaults(); got != keep {
		t.Fatalf("explicit tolerance rewritten: %+v", got)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := &Baseline{
		Note:      "test",
		Tolerance: Tolerance{AllocsFrac: 0.01, NsFactor: 3},
		Sweep:     []SweepRow{{Bench: "BenchmarkSweepWorkers1", Workers: 1, AllocsPerCase: 42}},
	}
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, back) {
		t.Fatalf("round trip mismatch: %+v vs %+v", b, back)
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline must error")
	}
}

func TestRunSweepCurveSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are slow")
	}
	cfg := fastConfig()
	reg := obs.NewRegistry()
	rows, err := RunSweepCurve(cfg, scenario.DefaultRunOptions(cfg), SweepCurveConfig{
		Workers:  []int{1, 1}, // dedup: two entries, one row
		Seeds:    2,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("want 1 row after dedup, got %d", len(rows))
	}
	r := rows[0]
	if r.Bench != "BenchmarkSweepWorkers1" || r.Workers != 1 || r.Cases != 2 {
		t.Fatalf("unexpected row: %+v", r)
	}
	if r.NsPerCase <= 0 || r.AllocsPerCase <= 0 || r.CasesPerSec <= 0 {
		t.Fatalf("non-positive measurements: %+v", r)
	}
	if r.EnvironmentLimited {
		t.Fatalf("workers=1 can never be environment-limited: %+v", r)
	}
	if r.P50CaseMs <= 0 || r.P99CaseMs < r.P50CaseMs {
		t.Fatalf("implausible percentiles: %+v", r)
	}
	// The stage registry collected real observations from the hot paths.
	summary := StageSummary(reg)
	if len(summary) == 0 {
		t.Fatal("no stage histograms observed anything")
	}
	seen := map[string]bool{}
	for _, s := range summary {
		if s.Count <= 0 {
			t.Errorf("stage %s has zero count in summary", s.Stage)
		}
		seen[s.Stage] = true
	}
	for _, stage := range []string{obs.StageEventPop, obs.StageFabricForward, obs.StageDiagnose} {
		if !seen[stage] {
			t.Errorf("stage %s missing from summary (saw %v)", stage, seen)
		}
	}
}

func TestRunSweepCurveCanaryBurnsAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are slow")
	}
	cfg := fastConfig()
	run := func(extra int) SweepRow {
		t.Helper()
		rows, err := RunSweepCurve(cfg, scenario.DefaultRunOptions(cfg), SweepCurveConfig{
			Workers:            []int{1},
			Seeds:              2,
			Registry:           obs.NewRegistry(),
			ExtraAllocsPerCase: extra,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rows[0]
	}
	clean := run(0)
	dirty := run(20000)
	// The burn makes n distinct allocations per case plus slice overhead;
	// anything clearly above the clean row proves the canary works.
	if dirty.AllocsPerCase < clean.AllocsPerCase+15000 {
		t.Fatalf("canary did not inflate allocs/case: clean %d, dirty %d",
			clean.AllocsPerCase, dirty.AllocsPerCase)
	}
}

func TestRunDiagnoseSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are slow")
	}
	cfg := fastConfig()
	reg := obs.NewRegistry()
	row, err := RunDiagnose(cfg, scenario.DefaultRunOptions(cfg), DiagnoseConfig{
		Iters:    3,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.Iters != 3 || row.Records == 0 || row.Reports == 0 {
		t.Fatalf("unexpected row: %+v", row)
	}
	if row.NsPerDiag <= 0 || row.AllocsPerDiag <= 0 || row.P50Ms <= 0 {
		t.Fatalf("non-positive measurements: %+v", row)
	}
	if s, ok := findSample(reg, DiagHistogram); !ok || s.Count != 3 {
		t.Fatalf("diagnose histogram count = %v %v, want 3", s.Count, ok)
	}
	// Analyze was timed stage-by-stage too.
	if s, ok := findSample(reg, "vedr_stage_"+obs.StageWaitgraphBuild+"_ns"); !ok || s.Count == 0 {
		t.Fatal("waitgraph stage histogram empty during RunDiagnose")
	}
}

func TestIngestStreamOrderAndHosts(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations are slow")
	}
	cfg := fastConfig()
	cs, err := scenario.GenerateCase(scenario.Contention, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, scenario.DefaultRunOptions(cfg))
	if err != nil {
		t.Fatal(err)
	}
	msgs := ingestStream(res)
	want := len(res.CFs) + len(res.Records) + len(res.Reports)
	if len(msgs) != want {
		t.Fatalf("stream has %d messages, want %d", len(msgs), want)
	}
	for i, m := range msgs {
		if !strings.HasPrefix(m.host, "h") || len(m.host) != 3 {
			t.Fatalf("message %d has malformed host %q", i, m.host)
		}
		if m.send == nil {
			t.Fatalf("message %d has no send func", i)
		}
	}
}
