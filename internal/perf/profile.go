package perf

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// stop function that finishes and closes it. Call stop exactly once.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("perf: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("perf: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live data,
// not garbage awaiting collection) and writes a heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	defer func() { _ = f.Close() }()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	return nil
}
