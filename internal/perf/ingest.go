package perf

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"vedrfolnir/internal/analyzerd"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/fleet"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/scenario"
)

// IngestConfig parameterizes the fleet ingest-throughput workload.
type IngestConfig struct {
	// BinPath is the vedranalyzerd binary the shard children run.
	// Required.
	BinPath string
	// Shards lists the fleet widths to measure (default 1, 2, 4).
	Shards []int
	// Seed picks the case whose record/report/CF stream is replayed
	// (default 0).
	Seed int64
	// LatencyMsgs is the number of one-at-a-time acked sends per width
	// (default 200); ThroughputMsgs the batched-send goal (default: four
	// times the stream, at least 1000).
	LatencyMsgs    int
	ThroughputMsgs int
	// Registry, when set, receives the per-width ack-latency histograms.
	Registry *obs.Registry
	// Progress, when set, receives one line per finished width.
	Progress io.Writer
}

// ingestMsg is one replayable message attributed to its producing host.
type ingestMsg struct {
	host string
	send func(*analyzerd.ReliableClient) error
}

// ingestStream fixes the replay order the same way the fleet conformance
// runner does: sorted collective flows, then step records, then telemetry
// reports, each sent by the host that produced it.
func ingestStream(res scenario.Result) []ingestMsg {
	var msgs []ingestMsg
	host := func(id int32) string { return fmt.Sprintf("h%02d", id) }
	cfs := make([]fabric.FlowKey, 0, len(res.CFs))
	for f := range res.CFs {
		cfs = append(cfs, f)
	}
	sort.Slice(cfs, func(i, j int) bool { return cfs[i].String() < cfs[j].String() })
	for _, f := range cfs {
		f := f
		msgs = append(msgs, ingestMsg{host: host(int32(f.Src)),
			send: func(rc *analyzerd.ReliableClient) error { return rc.SendCF(f) }})
	}
	for _, rec := range res.Records {
		rec := rec
		msgs = append(msgs, ingestMsg{host: host(int32(rec.Host)),
			send: func(rc *analyzerd.ReliableClient) error { return rc.SendStep(rec) }})
	}
	for _, rep := range res.Reports {
		rep := rep
		msgs = append(msgs, ingestMsg{host: host(int32(rep.TriggeredBy.Src)),
			send: func(rc *analyzerd.ReliableClient) error { return rc.SendReport(rep) }})
	}
	return msgs
}

// RunIngest measures fleet ingest at each shard count: a real
// `vedranalyzerd` cluster (router + supervised shard processes) receives
// a replayed case stream through per-host ReliableClients. Phase one
// sends LatencyMsgs messages one Flush at a time — each Flush is a full
// seq/ack round trip, the ack-latency sample. Phase two streams
// ThroughputMsgs messages with per-host batching and measures sustained
// msgs/s.
func RunIngest(cfg scenario.Config, opts scenario.RunOptions, ic IngestConfig) ([]IngestRow, error) {
	if ic.BinPath == "" {
		return nil, fmt.Errorf("perf: ingest needs the vedranalyzerd binary path")
	}
	widths := append([]int(nil), ic.Shards...)
	if len(widths) == 0 {
		widths = []int{1, 2, 4}
	}
	latN := ic.LatencyMsgs
	if latN <= 0 {
		latN = 200
	}

	cs, err := scenario.GenerateCase(scenario.Contention, ic.Seed, cfg)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	stream := ingestStream(res)
	if len(stream) == 0 {
		return nil, fmt.Errorf("perf: case produced an empty stream")
	}
	thrN := ic.ThroughputMsgs
	if thrN <= 0 {
		thrN = 4 * len(stream)
		if thrN < 1000 {
			thrN = 1000
		}
	}

	now := NanoNow()
	var rows []IngestRow
	for _, shards := range widths {
		row, err := runIngestWidth(shards, stream, latN, thrN, ic, now)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
		if ic.Progress != nil {
			_, _ = fmt.Fprintf(ic.Progress, "shards=%d: %.0f msgs/s, ack p50 %.0f us\n",
				shards, row.MsgsPerSec, row.AckP50Us)
		}
	}
	return rows, nil
}

func runIngestWidth(shards int, stream []ingestMsg, latN, thrN int, ic IngestConfig, now func() int64) (*IngestRow, error) {
	dir, err := os.MkdirTemp("", "vedrperf-ingest")
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	defer func() { _ = os.RemoveAll(dir) }()

	fl, err := fleet.Start(fleet.Config{
		BinPath:   ic.BinPath,
		Shards:    shards,
		Dir:       dir,
		Fsync:     "off", // measure the protocol path, not the disk
		HoldShard: -1,
	})
	if err != nil {
		return nil, fmt.Errorf("perf: fleet width %d: %w", shards, err)
	}
	defer fl.Close()

	clients := map[string]*analyzerd.ReliableClient{}
	client := func(host string) (*analyzerd.ReliableClient, error) {
		if rc, ok := clients[host]; ok {
			return rc, nil
		}
		rc, err := analyzerd.NewReliableClient(fl.Addr(), analyzerd.ClientConfig{
			ID:          host,
			MaxAttempts: 40,
			BackoffBase: 20 * time.Millisecond,
			BackoffMax:  500 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		clients[host] = rc
		return rc, nil
	}
	defer func() {
		for _, rc := range clients {
			_ = rc.Close()
		}
	}()

	ackHist := ic.Registry.Histogram(fmt.Sprintf("perf_ack_ns_s%d", shards),
		"ack round-trip wall time (ns)", obs.WallBuckets())
	ackTimer := obs.NewTimer(ackHist, now)

	// Phase one: one acked round trip per message.
	sent := 0
	for sent < latN {
		m := stream[sent%len(stream)]
		rc, err := client(m.host)
		if err != nil {
			return nil, fmt.Errorf("perf: connect %s: %w", m.host, err)
		}
		if err := m.send(rc); err != nil {
			return nil, fmt.Errorf("perf: send: %w", err)
		}
		t0 := ackTimer.Begin()
		if err := rc.Flush(); err != nil {
			return nil, fmt.Errorf("perf: ack: %w", err)
		}
		ackTimer.End(t0)
		sent++
	}

	// Phase two: stream with per-host batching — enqueue a full pass of
	// the stream, then flush every client once, repeated to the goal.
	done := 0
	sw := NanoNow()
	for done < thrN {
		n := len(stream)
		if rest := thrN - done; rest < n {
			n = rest
		}
		for _, m := range stream[:n] {
			rc, err := client(m.host)
			if err != nil {
				return nil, fmt.Errorf("perf: connect %s: %w", m.host, err)
			}
			if err := m.send(rc); err != nil {
				return nil, fmt.Errorf("perf: send: %w", err)
			}
		}
		hosts := make([]string, 0, len(clients))
		for h := range clients {
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
		for _, h := range hosts {
			if err := clients[h].Flush(); err != nil {
				return nil, fmt.Errorf("perf: flush %s: %w", h, err)
			}
		}
		done += n
	}
	elapsed := sw()

	row := &IngestRow{
		Shards:         shards,
		Clients:        len(clients),
		LatencyMsgs:    latN,
		ThroughputMsgs: thrN,
		MsgsPerSec:     float64(thrN) / (float64(elapsed) / 1e9),
	}
	if s, ok := findSample(ic.Registry, fmt.Sprintf("perf_ack_ns_s%d", shards)); ok && s.Count > 0 {
		row.AckP50Us = s.Quantile(0.50) / 1e3
		row.AckP95Us = s.Quantile(0.95) / 1e3
		row.AckP99Us = s.Quantile(0.99) / 1e3
	}
	return row, nil
}
