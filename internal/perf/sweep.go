package perf

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/sweep"
)

// CaseHistogram names the per-case wall-latency histogram RunSweepCurve
// records into the stage registry.
const CaseHistogram = "perf_case_ns"

// SweepCurveConfig parameterizes the worker-scaling workload.
type SweepCurveConfig struct {
	// Workers lists the pool sizes to measure; empty means 1..NumCPU
	// (deduplicated, ascending).
	Workers []int
	// Seeds is the number of contention cases per run (default 8).
	Seeds int
	// Repeat re-runs the whole job set per pool size and aggregates
	// (default 1).
	Repeat int
	// Registry, when set, receives the per-case latency histogram and the
	// hot-path stage histograms (one shared registry across pool sizes).
	Registry *obs.Registry
	// Progress, when set, receives one line per finished pool size.
	Progress io.Writer
	// ExtraAllocsPerCase burns that many heap allocations per simulated
	// case — the CI canary proving the allocs gate actually fails a
	// regressed tree. Zero (always, outside the canary) adds nothing.
	ExtraAllocsPerCase int
}

// DefaultWorkerCounts returns the 1..NumCPU curve (always including 1).
func DefaultWorkerCounts() []int {
	n := runtime.NumCPU()
	out := make([]int, 0, n)
	for w := 1; w <= n; w++ {
		out = append(out, w)
	}
	return out
}

// allocSink keeps canary allocations live so the compiler cannot elide
// them; guarded because exec runs on every pool worker.
var (
	allocSinkMu sync.Mutex
	allocSink   [][]byte
)

// burnAllocs performs n distinct heap allocations and publishes them so
// they cannot be optimized away.
func burnAllocs(n int) {
	buf := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		buf = append(buf, make([]byte, 16))
	}
	allocSinkMu.Lock()
	allocSink = buf
	allocSinkMu.Unlock()
}

// benchName renders the canonical row name for a pool size, matching the
// historical BenchmarkSweepWorkersN naming so baselines stay comparable.
func benchName(workers int) string { return fmt.Sprintf("BenchmarkSweepWorkers%d", workers) }

// RunSweepCurve measures merged-sweep throughput of the Fig 9 contention
// subset at each pool size: cases/s, ns/case, allocs/bytes per case, and
// per-case wall-latency percentiles. GOMAXPROCS is raised to the pool
// size for each measurement (and restored); a pool the machine cannot
// actually parallelize is annotated EnvironmentLimited rather than
// silently published.
func RunSweepCurve(cfg scenario.Config, opts scenario.RunOptions, cc SweepCurveConfig) ([]SweepRow, error) {
	counts := append([]int(nil), cc.Workers...)
	if len(counts) == 0 {
		counts = DefaultWorkerCounts()
	}
	sort.Ints(counts)
	seeds := cc.Seeds
	if seeds <= 0 {
		seeds = 8
	}
	repeat := cc.Repeat
	if repeat <= 0 {
		repeat = 1
	}
	now := NanoNow()
	var stages *obs.Stages
	if cc.Registry != nil {
		stages = obs.NewStages(cc.Registry, now)
	}
	opts.Stages = stages

	baseExec := sweep.Cases(cfg, opts)
	jobs := make([]sweep.Job, seeds)
	for i := range jobs {
		jobs[i] = sweep.Job{Kind: scenario.Contention, Seed: int64(i), System: scenario.Vedrfolnir}
	}

	rows := make([]SweepRow, 0, len(counts))
	prevW := -1
	for _, workers := range counts {
		if workers < 1 || workers == prevW {
			continue
		}
		prevW = workers
		// One histogram per pool size, so each row's percentiles cover
		// only its own runs.
		histName := fmt.Sprintf("%s_w%d", CaseHistogram, workers)
		caseHist := cc.Registry.Histogram(histName, "wall time of one simulated case (ns)", obs.WallBuckets())
		caseTimer := obs.NewTimer(caseHist, now)
		exec := func(job sweep.Job) (sweep.Result, error) {
			t0 := caseTimer.Begin()
			r, err := baseExec(job)
			caseTimer.End(t0)
			if cc.ExtraAllocsPerCase > 0 {
				burnAllocs(cc.ExtraAllocsPerCase)
			}
			return r, err
		}

		prev := runtime.GOMAXPROCS(0)
		if workers > prev {
			runtime.GOMAXPROCS(workers)
		}
		cases := 0
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		sw := NanoNow()
		for rep := 0; rep < repeat; rep++ {
			sum, err := sweep.Run(jobs, exec, sweep.Options{Workers: workers})
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return nil, err
			}
			if len(sum.Failed) > 0 {
				runtime.GOMAXPROCS(prev)
				return nil, fmt.Errorf("perf: failed cases at workers=%d: %v", workers, sum.Failed)
			}
			cases += len(sum.Results)
		}
		elapsed := sw()
		runtime.ReadMemStats(&after)
		procs := runtime.GOMAXPROCS(0)
		if procs != prev {
			runtime.GOMAXPROCS(prev)
		}

		row := SweepRow{
			Bench:              benchName(workers),
			Workers:            workers,
			GoMaxProcs:         procs,
			Jobs:               len(jobs),
			Cases:              cases,
			CasesPerSec:        float64(cases) / (float64(elapsed) / 1e9),
			NsPerCase:          elapsed / int64(cases),
			AllocsPerCase:      int64(after.Mallocs-before.Mallocs) / int64(cases),
			BytesPerCase:       int64(after.TotalAlloc-before.TotalAlloc) / int64(cases),
			EnvironmentLimited: Limited(workers, procs, runtime.NumCPU()),
		}
		if s, ok := findSample(cc.Registry, histName); ok && s.Count > 0 {
			row.P50CaseMs = s.Quantile(0.50) / 1e6
			row.P95CaseMs = s.Quantile(0.95) / 1e6
			row.P99CaseMs = s.Quantile(0.99) / 1e6
		}
		rows = append(rows, row)
		if cc.Progress != nil {
			limited := ""
			if row.EnvironmentLimited {
				limited = " (environment-limited)"
			}
			_, _ = fmt.Fprintf(cc.Progress, "workers=%d: %.1f cases/s, %d allocs/case%s\n",
				workers, row.CasesPerSec, row.AllocsPerCase, limited)
		}
	}
	return rows, nil
}

// findSample returns the named metric's snapshot sample.
func findSample(r *obs.Registry, name string) (obs.Sample, bool) {
	for _, s := range r.Snapshot() {
		if s.Name == name {
			return s, true
		}
	}
	return obs.Sample{}, false
}

// StageSummary renders the stage histograms in r (the canonical
// vedr_stage_* set plus the per-case histogram) as report rows, in
// display order.
func StageSummary(r *obs.Registry) []StageRow {
	var out []StageRow
	names := append([]string{}, obs.StageNames()...)
	for _, stage := range names {
		if s, ok := findSample(r, "vedr_stage_"+stage+"_ns"); ok && s.Count > 0 {
			out = append(out, StageRow{
				Stage:   stage,
				Count:   s.Count,
				TotalMs: float64(s.Sum) / 1e6,
				P50Us:   s.Quantile(0.50) / 1e3,
				P95Us:   s.Quantile(0.95) / 1e3,
				P99Us:   s.Quantile(0.99) / 1e3,
			})
		}
	}
	return out
}
