package perf

import (
	"encoding/json"
	"fmt"
	"os"
)

// Tolerance bounds how far a measured sweep row may drift from the
// baseline before the gate fails. Allocation counts are deterministic
// modulo map iteration and goroutine scheduling, so they get a tight
// fractional band; wall-time numbers swing with CI host load, so they
// get a generous multiplicative factor.
type Tolerance struct {
	// AllocsFrac is the allowed fractional growth in allocs/case
	// (default 0.01, i.e. one percent).
	AllocsFrac float64 `json:"allocs_frac"`
	// NsFactor is the allowed multiplicative growth in ns/case and
	// shrink in cases/s (default 3.0).
	NsFactor float64 `json:"ns_factor"`
}

// WithDefaults fills unset (or nonsensical) tolerance fields with the
// documented defaults: 1% allocation growth, 3x wall-time swing.
func (t Tolerance) WithDefaults() Tolerance {
	if t.AllocsFrac <= 0 {
		t.AllocsFrac = 0.01
	}
	if t.NsFactor <= 1 {
		t.NsFactor = 3.0
	}
	return t
}

// Baseline is the checked-in perf reference (perf/baseline.json) the CI
// gate compares fresh measurements against.
type Baseline struct {
	Note      string     `json:"note,omitempty"`
	Tolerance Tolerance  `json:"tolerance"`
	Sweep     []SweepRow `json:"sweep"`
}

// LoadBaseline reads a baseline document from path.
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	return &b, nil
}

// Save writes the baseline document to path, pretty-printed for review
// in diffs.
func (b *Baseline) Save(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("perf: %w", err)
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// CompareSweep checks fresh sweep rows against the baseline and returns
// one violation string per breach (empty means the gate passes). Only
// regressions fail: rows may get faster or leaner without limit, and
// rows measured at worker counts absent from the baseline are ignored
// (new curve points need a baseline refresh, not a red build).
func (b *Baseline) CompareSweep(rows []SweepRow) []string {
	tol := b.Tolerance.WithDefaults()
	base := make(map[int]SweepRow, len(b.Sweep))
	for _, r := range b.Sweep {
		base[r.Workers] = r
	}
	var violations []string
	for _, r := range rows {
		ref, ok := base[r.Workers]
		if !ok {
			continue
		}
		if maxAllocs := float64(ref.AllocsPerCase) * (1 + tol.AllocsFrac); float64(r.AllocsPerCase) > maxAllocs {
			violations = append(violations, fmt.Sprintf(
				"workers=%d: allocs/case %d exceeds baseline %d by more than %.1f%% (limit %.0f)",
				r.Workers, r.AllocsPerCase, ref.AllocsPerCase, tol.AllocsFrac*100, maxAllocs))
		}
		if maxNs := float64(ref.NsPerCase) * tol.NsFactor; float64(r.NsPerCase) > maxNs {
			violations = append(violations, fmt.Sprintf(
				"workers=%d: ns/case %d exceeds baseline %d by more than %.1fx (limit %.0f)",
				r.Workers, r.NsPerCase, ref.NsPerCase, tol.NsFactor, maxNs))
		}
		if minRate := ref.CasesPerSec / tol.NsFactor; r.CasesPerSec < minRate {
			violations = append(violations, fmt.Sprintf(
				"workers=%d: %.2f cases/s is below baseline %.2f by more than %.1fx (limit %.2f)",
				r.Workers, r.CasesPerSec, ref.CasesPerSec, tol.NsFactor, minRate))
		}
	}
	return violations
}
