// Package perf is the performance-observability layer: named workloads
// over the repo's own hot paths (the sweep worker-scaling curve, analyzer
// diagnose latency, fleet ingest throughput), stage-timing capture via
// obs.Stages, pprof profile capture, and the checked-in perf baseline the
// CI regression gate compares against.
//
// Everything here measures *host* wall time and allocation counts — the
// one corner of the tree where that is the point. All clock reads funnel
// through the sanctioned simtime.Stopwatch gateway (NanoNow); simulated
// results are never affected (see TestStagesByteIdentity in
// internal/scenario).
package perf

import (
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
)

// NanoNow returns a monotonic nanosecond source for obs.Timer/obs.Stages,
// backed by the sanctioned stopwatch gateway. Readings are offsets from
// the call to NanoNow, which is all a duration timer needs.
func NanoNow() func() int64 {
	sw := simtime.NewSystemStopwatch()
	return func() int64 { return int64(sw.Elapsed()) }
}

// BenchConfig is the canonical reduced workload every perf trajectory row
// is measured against: 1/360 scale with the cell size and PFC/ECN
// thresholds pinned (not derived), so the simulated byte stream is
// identical across machines and PRs. bench_test.go and vedrperf must
// agree on this or baselines stop being comparable.
func BenchConfig() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Scale = 1.0 / 360
	cfg.StepBytes = cfg.ScaledBytes(360e6)
	cfg.CellSize = 16 << 10
	cfg.Fabric.PFCPauseThreshold = 64 << 10
	cfg.Fabric.PFCResumeThreshold = 32 << 10
	cfg.Fabric.ECNThreshold = 32 << 10
	return cfg
}

// BenchRunOptions returns the run options the perf rows are measured
// under: the Fig 9 "optimal parameters" (≤5 detections per step).
func BenchRunOptions(cfg scenario.Config) scenario.RunOptions {
	opts := scenario.DefaultRunOptions(cfg)
	opts.Monitor.MaxDetectPerStep = 5
	return opts
}
