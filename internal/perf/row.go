package perf

// SweepRow is one worker-scaling datapoint in BENCH_sweep.json. The first
// nine fields are the long-standing schema the repo's bench trajectory is
// recorded in; the latency percentiles and the environment annotation were
// added with the perf-observability layer (absent fields render as the
// old schema, so historical rows still parse).
type SweepRow struct {
	Bench       string  `json:"bench"`
	Workers     int     `json:"workers"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	Jobs        int     `json:"jobs"`
	Cases       int     `json:"cases"`
	CasesPerSec float64 `json:"cases_per_sec"`
	NsPerCase   int64   `json:"ns_per_case"`
	// Allocation footprint per simulated case (runtime.MemStats deltas
	// across the timed loop) — the quantity the hotalloc analyzer exists
	// to keep flat, and the strictly-gated number in perf/baseline.json.
	AllocsPerCase int64 `json:"allocs_per_case"`
	BytesPerCase  int64 `json:"bytes_per_case"`

	// Per-case wall-latency percentiles in milliseconds, estimated from
	// the perf_case_ns histogram buckets (obs.Sample.Quantile).
	P50CaseMs float64 `json:"p50_case_ms,omitempty"`
	P95CaseMs float64 `json:"p95_case_ms,omitempty"`
	P99CaseMs float64 `json:"p99_case_ms,omitempty"`

	// EnvironmentLimited marks a row whose pool could not actually run in
	// parallel (gomaxprocs or the machine's core count below the worker
	// count). Such a row measures scheduling overhead, not scaling, and
	// must say so instead of silently publishing a 1-P datapoint.
	EnvironmentLimited bool `json:"environment_limited,omitempty"`
}

// Limited reports whether a row recorded at the given GOMAXPROCS and CPU
// count must carry the EnvironmentLimited annotation.
func Limited(workers, gomaxprocs, numCPU int) bool {
	return gomaxprocs < workers || numCPU < workers
}

// IngestRow is one fleet ingest datapoint in BENCH_analyzerd.json: msgs/s
// and ack-latency percentiles at one shard count.
type IngestRow struct {
	Shards  int `json:"shards"`
	Clients int `json:"clients"`
	// LatencyMsgs messages were sent one-at-a-time (one Flush == one
	// acked round trip) to measure ack latency; ThroughputMsgs were sent
	// in client-sized batches to measure sustained msgs/s.
	LatencyMsgs    int     `json:"latency_msgs"`
	ThroughputMsgs int     `json:"throughput_msgs"`
	MsgsPerSec     float64 `json:"msgs_per_sec"`
	AckP50Us       float64 `json:"ack_p50_us"`
	AckP95Us       float64 `json:"ack_p95_us"`
	AckP99Us       float64 `json:"ack_p99_us"`
}

// DiagnoseRow is the analyzer diagnose-latency datapoint in
// BENCH_analyzerd.json: repeated full-pipeline Analyze calls over one
// collected case.
type DiagnoseRow struct {
	Records   int     `json:"records"`
	Reports   int     `json:"reports"`
	Iters     int     `json:"iters"`
	NsPerDiag int64   `json:"ns_per_diag"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	// Allocation footprint per Analyze call.
	AllocsPerDiag int64 `json:"allocs_per_diag"`
	BytesPerDiag  int64 `json:"bytes_per_diag"`
}

// StageRow summarizes one hot-path stage histogram for vedrperf's
// stderr report: where the nanoseconds went.
type StageRow struct {
	Stage   string  `json:"stage"`
	Count   int64   `json:"count"`
	TotalMs float64 `json:"total_ms"`
	P50Us   float64 `json:"p50_us"`
	P95Us   float64 `json:"p95_us"`
	P99Us   float64 `json:"p99_us"`
}

// AnalyzerdBench is the whole BENCH_analyzerd.json document.
type AnalyzerdBench struct {
	Ingest   []IngestRow  `json:"ingest,omitempty"`
	Diagnose *DiagnoseRow `json:"diagnose,omitempty"`
}
