package perf

import (
	"fmt"
	"runtime"

	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/scenario"
)

// DiagHistogram names the per-Analyze wall-latency histogram RunDiagnose
// records into the registry.
const DiagHistogram = "perf_diagnose_ns"

// DiagnoseConfig parameterizes the analyzer-latency workload.
type DiagnoseConfig struct {
	// Seed picks the contention case whose collected telemetry the
	// analyzer re-analyzes (default 0).
	Seed int64
	// Iters is the number of timed Analyze calls (default 50).
	Iters int
	// Registry, when set, receives the latency histogram and the
	// analyzer's stage histograms.
	Registry *obs.Registry
}

// RunDiagnose measures the full §III-D pipeline's latency: it runs one
// contention case to collect a realistic input (step records, telemetry
// reports, collective-flow census), then repeatedly calls
// diagnose.Analyze over that fixed input, reporting wall-latency
// percentiles and the allocation footprint per call.
func RunDiagnose(cfg scenario.Config, opts scenario.RunOptions, dc DiagnoseConfig) (*DiagnoseRow, error) {
	iters := dc.Iters
	if iters <= 0 {
		iters = 50
	}
	cs, err := scenario.GenerateCase(scenario.Contention, dc.Seed, cfg)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}
	res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("perf: %w", err)
	}

	now := NanoNow()
	var stages *obs.Stages
	if dc.Registry != nil {
		stages = obs.NewStages(dc.Registry, now)
	}
	timer := obs.NewTimer(
		dc.Registry.Histogram(DiagHistogram, "wall time of one Analyze call (ns)", obs.WallBuckets()), now)
	in := diagnose.Input{
		Records: res.Records,
		Reports: res.Reports,
		CFs:     res.CFs,
		Stages:  stages,
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sw := NanoNow()
	for i := 0; i < iters; i++ {
		t0 := timer.Begin()
		d := diagnose.Analyze(in)
		timer.End(t0)
		if len(d.Findings) == 0 {
			return nil, fmt.Errorf("perf: diagnosis lost its findings on iter %d", i)
		}
	}
	elapsed := sw()
	runtime.ReadMemStats(&after)

	row := &DiagnoseRow{
		Records:       len(res.Records),
		Reports:       len(res.Reports),
		Iters:         iters,
		NsPerDiag:     elapsed / int64(iters),
		AllocsPerDiag: int64(after.Mallocs-before.Mallocs) / int64(iters),
		BytesPerDiag:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
	}
	if s, ok := findSample(dc.Registry, DiagHistogram); ok && s.Count > 0 {
		row.P50Ms = s.Quantile(0.50) / 1e6
		row.P95Ms = s.Quantile(0.95) / 1e6
		row.P99Ms = s.Quantile(0.99) / 1e6
	}
	return row, nil
}
