package sim

import (
	"testing"
	"time"

	"vedrfolnir/internal/simtime"
)

func TestRunOrdering(t *testing.T) {
	k := New(1)
	var got []string
	k.After(2*time.Microsecond, func() { got = append(got, "b") })
	k.After(1*time.Microsecond, func() { got = append(got, "a") })
	k.After(3*time.Microsecond, func() { got = append(got, "c") })
	end := k.Run(simtime.Never)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order = %v", got)
	}
	if end != simtime.Time(3*time.Microsecond) {
		t.Fatalf("end = %v, want 3µs", end)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New(1)
	var seen []simtime.Time
	k.After(time.Microsecond, func() {
		seen = append(seen, k.Now())
		k.After(time.Microsecond, func() {
			seen = append(seen, k.Now())
		})
	})
	k.Run(simtime.Never)
	if len(seen) != 2 {
		t.Fatalf("seen = %v", seen)
	}
	if seen[0] != simtime.Time(time.Microsecond) || seen[1] != simtime.Time(2*time.Microsecond) {
		t.Fatalf("times = %v", seen)
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	fired := 0
	k.After(time.Millisecond, func() { fired++ })
	k.After(time.Second, func() { fired++ })
	k.Run(simtime.Time(10 * time.Millisecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (late event must not run)", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
}

func TestRunAdvancesToDeadlineWhenDrained(t *testing.T) {
	k := New(1)
	k.After(time.Microsecond, nil)
	k.Run(simtime.Time(5 * time.Microsecond))
	if k.Now() != simtime.Time(5*time.Microsecond) {
		t.Fatalf("now = %v, want 5µs", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		k.After(time.Duration(i)*time.Microsecond, func() {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run(simtime.Never)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New(1)
	k.After(time.Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Errorf("expected panic scheduling in the past")
			}
		}()
		k.At(0, nil)
	})
	k.Run(simtime.Never)
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		k := New(42)
		var out []int64
		for i := 0; i < 100; i++ {
			k.After(simtime.Duration(k.Rand().Intn(1000)), func() {
				out = append(out, int64(k.Now()))
			})
		}
		k.Run(simtime.Never)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEventLimit(t *testing.T) {
	k := New(1)
	k.SetEventLimit(10)
	var reschedule func()
	reschedule = func() { k.After(time.Nanosecond, reschedule) }
	k.After(0, reschedule)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected event-limit panic")
		}
	}()
	k.Run(simtime.Never)
}

func TestCancelEvent(t *testing.T) {
	k := New(1)
	fired := false
	e := k.After(time.Microsecond, func() { fired = true })
	k.Cancel(e)
	k.Run(simtime.Never)
	if fired {
		t.Fatalf("canceled event fired")
	}
}
