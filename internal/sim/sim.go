// Package sim provides the discrete-event simulation kernel every other
// substrate runs on: a virtual clock, an event scheduler and a deterministic
// random source. The kernel is single-goroutine by design — determinism is a
// hard requirement for reproducing the paper's figures bit-identically.
package sim

import (
	"fmt"
	"math/rand"

	"vedrfolnir/internal/eventq"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/simtime"
)

// Kernel is a discrete-event simulator. Create one with New.
type Kernel struct {
	now     simtime.Time
	q       eventq.Queue
	rng     *rand.Rand
	stopped bool
	events  uint64
	limit   uint64

	// Wall-time stage timers (perf observability). Nil by default: a nil
	// *obs.Timer no-ops, so the uninstrumented hot path pays one nil check
	// and the simulated outcome is identical either way.
	tPush *obs.Timer
	tPop  *obs.Timer
}

// New returns a kernel whose random source is seeded with seed, so two runs
// with equal seeds and equal event schedules are identical.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation time.
func (k *Kernel) Now() simtime.Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Events returns the number of events executed so far.
func (k *Kernel) Events() uint64 { return k.events }

// SetEventLimit aborts Run with a panic after n events; 0 means unlimited.
// It is a guard against accidental event storms (e.g. a forwarding loop
// without TTL) in tests.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// SetStages installs wall-time stage timers around the scheduler's
// push/pop hot path. A nil bundle (the default) disables them; timing
// never influences the simulation, only the profiling histograms.
func (k *Kernel) SetStages(st *obs.Stages) {
	if st == nil {
		k.tPush, k.tPop = nil, nil
		return
	}
	k.tPush, k.tPop = st.EventPush, st.EventPop
}

// QueueStats returns the event queue's lifetime traffic counters.
func (k *Kernel) QueueStats() eventq.Stats { return k.q.Stats() }

// At schedules fn to run at absolute time at. Scheduling in the past is a
// programming error and panics, since it would silently reorder causality.
func (k *Kernel) At(at simtime.Time, fn func()) *eventq.Event {
	if at < k.now {
		//lint:ignore nopanic causality invariant: a past-dated event would silently reorder the run; documented API contract
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, k.now))
	}
	t0 := k.tPush.Begin()
	e := k.q.Push(at, fn)
	k.tPush.End(t0)
	return e
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d simtime.Duration, fn func()) *eventq.Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel removes a pending event.
func (k *Kernel) Cancel(e *eventq.Event) { k.q.Cancel(e) }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains, Stop is called, or until is
// reached (use simtime.Never for no deadline). It returns the time of the
// last executed event.
func (k *Kernel) Run(until simtime.Time) simtime.Time {
	k.stopped = false
	for !k.stopped {
		t0 := k.tPop.Begin()
		e := k.q.Peek()
		if e == nil || e.At > until {
			k.tPop.End(t0)
			break
		}
		k.q.Pop()
		k.tPop.End(t0)
		k.now = e.At
		k.events++
		if k.limit > 0 && k.events > k.limit {
			//lint:ignore nopanic event-storm guard documented on SetEventLimit; aborting the run is its contract
			panic(fmt.Sprintf("sim: event limit %d exceeded at %v", k.limit, k.now))
		}
		if e.Fn != nil {
			e.Fn()
		}
	}
	if until != simtime.Never && k.now < until && k.q.Len() == 0 {
		// Advance the clock to the deadline so timed observations after
		// Run see a consistent "now".
		k.now = until
	}
	return k.now
}

// Pending returns the number of not-yet-executed events.
func (k *Kernel) Pending() int { return k.q.Len() }

// MaxPending returns the high-water mark of the event queue depth — how
// deep the scheduler backlog ever got during the run.
func (k *Kernel) MaxPending() int { return k.q.Stats().MaxLen }
