package experiments

import (
	"testing"

	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/sweep"
)

func TestChaosJobsShape(t *testing.T) {
	counts := tinyCounts()
	jobs := ChaosJobs(counts)
	want := 0
	for _, kind := range Kinds {
		want += counts[kind] * len(ChaosLossRates)
	}
	if len(jobs) != want {
		t.Fatalf("jobs = %d, want %d", len(jobs), want)
	}
	keys := map[string]bool{}
	for _, j := range jobs {
		if j.System != scenario.Vedrfolnir {
			t.Fatalf("chaos grid runs %v, want vedrfolnir only", j.System)
		}
		if keys[j.Key()] {
			t.Fatalf("duplicate job key %q", j.Key())
		}
		keys[j.Key()] = true
	}
}

func TestChaosPlanned(t *testing.T) {
	plan, err := PlanSweep("chaos", false, 360)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Jobs) == 0 || plan.Exec == nil {
		t.Fatal("chaos plan is empty")
	}
	found := false
	for _, n := range SweepNames() {
		if n == "chaos" {
			found = true
		}
	}
	if !found {
		t.Fatal("chaos missing from SweepNames")
	}
}

// TestChaosDegradation is the PR's acceptance sweep: across every §IV-A
// scenario and the full loss-rate axis, the chaos-wrapped pipeline must
// complete every case and yield a diagnosis — no per-job failures (panics,
// hangs caught by the watchdog) and no deadline hits — with confidence 1 at
// zero loss and a sane confidence under loss. Runs on a parallel pool and
// under -race in CI.
func TestChaosDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	cfg := fastConfig()
	counts := map[scenario.AnomalyKind]int{
		scenario.Contention:      2,
		scenario.Incast:          2,
		scenario.PFCStorm:        2,
		scenario.PFCBackpressure: 2,
	}
	rows, err := Chaos(cfg, counts, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * len(ChaosLossRates); len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Failed != 0 {
			t.Errorf("%v @ %.1f%%: %d case(s) failed outright", r.Kind, r.LossRate*100, r.Failed)
		}
		if r.Incomplete != 0 {
			t.Errorf("%v @ %.1f%%: %d case(s) hit the deadline", r.Kind, r.LossRate*100, r.Incomplete)
		}
		if got := r.Metrics.TP + r.Metrics.FP + r.Metrics.FN; got != r.Cases-r.Failed-r.Incomplete {
			t.Errorf("%v @ %.1f%%: outcome accounting broken: %+v over %d cases",
				r.Kind, r.LossRate*100, r.Metrics, r.Cases)
		}
		if r.LossRate == 0 {
			if !(r.MeanConfidence > 0.999) {
				t.Errorf("%v @ 0%%: confidence %v, want 1 (byte-identity control)",
					r.Kind, r.MeanConfidence)
			}
		} else if r.MeanConfidence <= 0 || r.MeanConfidence > 1 {
			t.Errorf("%v @ %.1f%%: confidence %v outside (0,1]",
				r.Kind, r.LossRate*100, r.MeanConfidence)
		}
	}

	// Determinism across pool widths: the robustness grid is still a
	// simulation, so workers=1 must reproduce the parallel rows exactly.
	seq, err := Chaos(cfg, counts, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != seq[i] {
			t.Errorf("row %d differs across pool widths:\n%+v\nvs\n%+v", i, rows[i], seq[i])
		}
	}
}
