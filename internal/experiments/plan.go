package experiments

import (
	"fmt"

	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/sweep"
	"vedrfolnir/internal/wire"
)

// SweepPlan is one named, journal-able case sweep: everything needed to
// run it (jobs + exec) and to identify its journal (spec). A journal's
// header stores the spec, so an interrupted sweep can be resumed — its job
// set and configuration rebuilt — from the journal file alone.
type SweepPlan struct {
	Spec   wire.SweepSpec
	Config scenario.Config
	Counts map[scenario.AnomalyKind]int
	Jobs   []sweep.Job
	Exec   sweep.Exec
}

// SweepNames lists the plannable sweeps: the paper's case-grid figures
// plus the extension scenarios, slowdown distributions, and the chaos
// robustness grid. fig9 and fig10 read the same sweep, so only fig9 is a
// distinct plan.
func SweepNames() []string {
	return []string{"fig9", "fig12", "fig13a", "fig13b", "ext", "slowdowns", "chaos"}
}

// PlanSweep builds the named sweep at the given census and workload scale.
// fig10 is accepted as an alias for fig9 (one sweep feeds both figures).
func PlanSweep(name string, paper bool, scaleDen float64) (*SweepPlan, error) {
	if name == "fig10" {
		name = "fig9"
	}
	cfg := scenario.ConfigForScale(scaleDen)
	counts := SmallCaseCounts()
	if paper {
		counts = PaperCaseCounts()
	}
	plan := &SweepPlan{
		Spec:   wire.SweepSpec{Name: name, Paper: paper, ScaleDen: scaleDen},
		Config: cfg,
		Counts: counts,
	}
	opts := scenario.DefaultRunOptions(cfg)
	switch name {
	case "fig9":
		opts.Monitor.MaxDetectPerStep = 5 // Fig 9 uses "optimal parameters"
		plan.Jobs = CellJobs(counts, Systems)
	case "fig12":
		plan.Jobs = Fig12Jobs(counts)
	case "fig13a":
		plan.Jobs = Fig13aJobs(counts[scenario.Contention], Fig13aThresholds(cfg))
	case "fig13b":
		plan.Jobs = Fig13bJobs(counts[scenario.Contention], []int{1, 3, 5})
	case "ext":
		plan.Jobs = ExtensionJobs(counts[scenario.Contention])
	case "slowdowns":
		plan.Jobs = SlowdownJobs(counts)
	case "chaos":
		plan.Jobs = ChaosJobs(counts)
	default:
		return nil, fmt.Errorf("experiments: unknown sweep %q (have %v)", name, SweepNames())
	}
	plan.Exec = sweep.Cases(cfg, opts)
	return plan, nil
}

// PlanFromSpec rebuilds the plan an existing journal was created for.
func PlanFromSpec(spec wire.SweepSpec) (*SweepPlan, error) {
	return PlanSweep(spec.Name, spec.Paper, spec.ScaleDen)
}
