package experiments

import (
	"fmt"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/monitor"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/waitgraph"
	"vedrfolnir/internal/workload"
)

// TrainingResult is one collective's outcome within a training stream.
type TrainingResult struct {
	Index    int
	Op       collective.Op
	Duration simtime.Duration
	Diag     *diagnose.Diagnosis
	Reports  int
}

// TrainingSim runs a stream of collectives from the LLM workload generator
// (97% AllReduce/AllGather, §IV-A) back-to-back on one simulated cluster —
// the steady-state regime the paper's intro motivates — optionally
// disturbing one collective with a background flow. Each collective gets a
// fresh monitor system and is diagnosed separately, so the test can assert
// that anomalies localize to the iteration they occurred in.
func TrainingSim(cfg scenario.Config, iterations, disturbAt int, disturbBytes int64) ([]TrainingResult, error) {
	ft := topo.PaperFatTree()
	k := sim.New(4242)
	k.SetEventLimit(2_000_000_000)
	fcfg := cfg.Fabric
	net := fabric.NewNetwork(k, ft.Topology, fcfg)

	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = cfg.CellSize
	hosts := make(map[topo.NodeID]*rdma.Host)
	for _, id := range ft.Hosts() {
		h, err := rdma.NewHost(k, net, id, rcfg)
		if err != nil {
			return nil, err
		}
		hosts[id] = h
	}
	ranks := ft.Hosts()[:cfg.Ranks]
	extras := ft.Hosts()[cfg.Ranks:]

	gen := workload.NewGenerator(7, workload.PaperMix(), ranks, cfg.StepBytes, cfg.Alg)

	var results []TrainingResult
	for it := 0; it < iterations; it++ {
		spec := gen.Next()
		schedules, err := collective.Decompose(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		run, err := collective.NewRunner(k, hosts, schedules)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		run.Bind()
		cfs := make(map[fabric.FlowKey]bool)
		for _, sch := range schedules {
			for s := range sch.Steps {
				cfs[sch.FlowKey(s)] = true
			}
		}
		mcfg := scenario.DefaultRunOptions(cfg).Monitor
		sys := monitor.NewSystem(k, net, run, hosts, mcfg)

		if it == disturbAt {
			bg := fabric.FlowKey{
				Src: extras[0], Dst: ranks[2],
				SrcPort: uint16(40000 + it), DstPort: uint16(40001 + it), Proto: 17,
			}
			if err := hosts[extras[0]].Send(bg, disturbBytes); err != nil {
				return nil, fmt.Errorf("experiments: background flow: %w", err)
			}
		}

		start := k.Now()
		var doneAt simtime.Time
		run.OnComplete = func(at simtime.Time) {
			doneAt = at
			k.Stop()
		}
		run.Start()
		k.Run(simtime.Never)
		if err := run.Err(); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		if done, _ := run.Done(); !done {
			return nil, fmt.Errorf("experiments: training iteration %d stalled", it)
		}

		diag := diagnose.Analyze(diagnose.Input{
			Records: run.Records(),
			Reports: sys.Reports(),
			CFs:     cfs,
			StepOf: func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
				host, step, ok := run.StepOf(f)
				return waitgraph.StepRef{Host: host, Step: step}, ok
			},
		})
		results = append(results, TrainingResult{
			Index:    it,
			Op:       spec.Op,
			Duration: doneAt.Sub(start),
			Diag:     diag,
			Reports:  len(sys.Reports()),
		})
	}
	return results, nil
}
