package experiments

import (
	"fmt"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/monitor"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/sweep"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/waitgraph"
	"vedrfolnir/internal/workload"
)

// TrainingResult is one collective's outcome within a training stream.
type TrainingResult struct {
	Index    int
	Op       collective.Op
	Duration simtime.Duration
	Diag     *diagnose.Diagnosis
	Reports  int
}

// TrainingSim runs a stream of collectives from the LLM workload generator
// (97% AllReduce/AllGather, §IV-A) back-to-back on one simulated cluster —
// the steady-state regime the paper's intro motivates — optionally
// disturbing one collective with a background flow. Each collective gets a
// fresh monitor system and is diagnosed separately, so the test can assert
// that anomalies localize to the iteration they occurred in.
func TrainingSim(cfg scenario.Config, iterations, disturbAt int, disturbBytes int64) ([]TrainingResult, error) {
	return TrainingStream(cfg, 0, iterations, disturbAt, disturbBytes)
}

// TrainingStream is TrainingSim for one stream of an independent-stream
// fleet: the kernel and workload-generator seeds derive from the stream
// index, so different streams simulate different clusters while stream 0
// reproduces TrainingSim exactly. Iterations within a stream share one
// simulated cluster and run back-to-back — the stream is the unit of
// parallelism, not the iteration.
func TrainingStream(cfg scenario.Config, stream int64, iterations, disturbAt int, disturbBytes int64) ([]TrainingResult, error) {
	ft := topo.PaperFatTree()
	k := sim.New(4242 + stream*7919)
	k.SetEventLimit(2_000_000_000)
	fcfg := cfg.Fabric
	net := fabric.NewNetwork(k, ft.Topology, fcfg)

	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = cfg.CellSize
	hosts := make(map[topo.NodeID]*rdma.Host)
	for _, id := range ft.Hosts() {
		h, err := rdma.NewHost(k, net, id, rcfg)
		if err != nil {
			return nil, err
		}
		hosts[id] = h
	}
	ranks := ft.Hosts()[:cfg.Ranks]
	extras := ft.Hosts()[cfg.Ranks:]

	gen := workload.NewGenerator(7+stream, workload.PaperMix(), ranks, cfg.StepBytes, cfg.Alg)

	var results []TrainingResult
	for it := 0; it < iterations; it++ {
		spec := gen.Next()
		schedules, err := collective.Decompose(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		run, err := collective.NewRunner(k, hosts, schedules)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		run.Bind()
		cfs := make(map[fabric.FlowKey]bool)
		for _, sch := range schedules {
			for s := range sch.Steps {
				cfs[sch.FlowKey(s)] = true
			}
		}
		mcfg := scenario.DefaultRunOptions(cfg).Monitor
		sys := monitor.NewSystem(k, net, run, hosts, mcfg)

		if it == disturbAt {
			bg := fabric.FlowKey{
				Src: extras[0], Dst: ranks[2],
				SrcPort: uint16(40000 + it), DstPort: uint16(40001 + it), Proto: 17,
			}
			if err := hosts[extras[0]].Send(bg, disturbBytes); err != nil {
				return nil, fmt.Errorf("experiments: background flow: %w", err)
			}
		}

		start := k.Now()
		var doneAt simtime.Time
		run.OnComplete = func(at simtime.Time) {
			doneAt = at
			k.Stop()
		}
		run.Start()
		k.Run(simtime.Never)
		if err := run.Err(); err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		if done, _ := run.Done(); !done {
			return nil, fmt.Errorf("experiments: training iteration %d stalled", it)
		}

		diag := diagnose.Analyze(diagnose.Input{
			Records: run.Records(),
			Reports: sys.Reports(),
			CFs:     cfs,
			StepOf: func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
				host, step, ok := run.StepOf(f)
				return waitgraph.StepRef{Host: host, Step: step}, ok
			},
		})
		results = append(results, TrainingResult{
			Index:    it,
			Op:       spec.Op,
			Duration: doneAt.Sub(start),
			Diag:     diag,
			Reports:  len(sys.Reports()),
		})
	}
	return results, nil
}

// TrainingStreamRow summarizes one stream of a training-fleet sweep.
type TrainingStreamRow struct {
	Stream int
	// Iterations holds each collective's completion time, in order.
	Iterations []simtime.Duration
	// DisturbDetected reports whether the disturbed iteration's diagnosis
	// named at least one culprit flow.
	DisturbDetected bool
	// Err is the stream's captured failure, if any.
	Err string
}

// TrainingSweep fans independent training streams (each its own simulated
// cluster, seeded from the stream index) over the sweep engine's worker
// pool — the fleet-scale steady-state regime. Every stream disturbs
// iteration disturbAt with a disturbBytes background flow; rows merge in
// stream order, identical at any worker count.
func TrainingSweep(cfg scenario.Config, streams, iterations, disturbAt int,
	disturbBytes int64, sw sweep.Options) ([]TrainingStreamRow, error) {

	jobs := make([]sweep.Job, streams)
	for s := range jobs {
		// The stream index rides in the seed; Kind/System only shape the
		// job key (a training stream has no single anomaly kind).
		jobs[s] = sweep.Job{Kind: scenario.Clean, Seed: int64(s), System: scenario.Vedrfolnir}
	}
	exec := func(j sweep.Job) (sweep.Result, error) {
		trs, err := TrainingStream(cfg, j.Seed, iterations, disturbAt, disturbBytes)
		if err != nil {
			return sweep.Result{}, err
		}
		r := sweep.Result{Completed: true}
		for _, tr := range trs {
			r.Samples = append(r.Samples, tr.Duration)
			r.CollectiveTime += tr.Duration
			if tr.Index == disturbAt {
				r.Detected = len(tr.Diag.Culprits())
			}
		}
		return r, nil
	}
	sum, err := sweep.Run(jobs, exec, sw)
	if err != nil {
		return nil, err
	}
	rows := make([]TrainingStreamRow, 0, streams)
	for s, r := range sum.Results {
		rows = append(rows, TrainingStreamRow{
			Stream:          s,
			Iterations:      r.Samples,
			DisturbDetected: r.Detected > 0,
			Err:             r.Err,
		})
	}
	return rows, nil
}
