// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV): the precision/recall comparison (Fig 9), processing and
// bandwidth overhead (Fig 10), host monitor overhead (Fig 11), the RTT
// threshold × detection count sweep (Fig 12), the step-aware ablations
// (Fig 13), and the Fig 14 case study. Each figure has a typed row form so
// cmd/vedrbench can print the same series the paper plots and tests can
// assert their shape.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/hostmon"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/viz"
)

// Kinds are the four evaluated anomaly scenarios in paper order.
var Kinds = []scenario.AnomalyKind{
	scenario.Contention, scenario.Incast, scenario.PFCStorm, scenario.PFCBackpressure,
}

// Systems are the compared diagnosis systems in paper order.
var Systems = []scenario.SystemKind{
	scenario.Vedrfolnir, scenario.HawkeyeMaxR, scenario.HawkeyeMinR, scenario.FullPolling,
}

// PaperCaseCounts is the §IV-A case census: 60/60/40/60.
func PaperCaseCounts() map[scenario.AnomalyKind]int {
	return map[scenario.AnomalyKind]int{
		scenario.Contention:      60,
		scenario.Incast:          60,
		scenario.PFCStorm:        40,
		scenario.PFCBackpressure: 60,
	}
}

// SmallCaseCounts is a fast census for tests and -short benches.
func SmallCaseCounts() map[scenario.AnomalyKind]int {
	return map[scenario.AnomalyKind]int{
		scenario.Contention:      6,
		scenario.Incast:          6,
		scenario.PFCStorm:        4,
		scenario.PFCBackpressure: 6,
	}
}

// Cell is one (scenario, system) aggregate: the quantities behind Figs 9
// and 10.
type Cell struct {
	Kind   scenario.AnomalyKind
	System scenario.SystemKind
	Cases  int

	Metrics scenario.Metrics

	// Mean per-case overheads.
	TelemetryBytes int64 // Fig 10a: processing overhead
	BandwidthBytes int64 // Fig 10b: polling + notifications + reports
}

// Precision of the cell.
func (c Cell) Precision() float64 { return c.Metrics.Precision() }

// Recall of the cell.
func (c Cell) Recall() float64 { return c.Metrics.Recall() }

// Sweep runs counts[kind] cases per anomaly kind under every system and
// aggregates them. Fig 9 reads the Metrics; Fig 10 reads the overheads.
// The paper reports Fig 9 "with optimal parameters": detection count 5.
func Sweep(cfg scenario.Config, counts map[scenario.AnomalyKind]int,
	systems []scenario.SystemKind, opts scenario.RunOptions) ([]Cell, error) {

	var out []Cell
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		for _, sys := range systems {
			cell := Cell{Kind: kind, System: sys, Cases: n}
			var telem, bw int64
			for seed := 0; seed < n; seed++ {
				cs, err := scenario.GenerateCase(kind, int64(seed), cfg)
				if err != nil {
					return nil, err
				}
				res, err := scenario.Run(cs, sys, cfg, opts)
				if err != nil {
					return nil, err
				}
				cell.Metrics.Add(res.Outcome)
				telem += res.Overhead.TelemetryBytes
				bw += res.Overhead.Bandwidth()
			}
			cell.TelemetryBytes = telem / int64(n)
			cell.BandwidthBytes = bw / int64(n)
			out = append(out, cell)
		}
	}
	return out, nil
}

// Fig11Row is one bar group of Fig 11.
type Fig11Row struct {
	Label      string
	CPU        time.Duration
	AllocBytes uint64
	SimTime    simtime.Duration
}

// Fig11 measures the host monitor's in-process overhead: three monitored
// runs against an unmonitored baseline, as the paper's testbed experiment
// does with NCCL.
func Fig11(runs int) ([]Fig11Row, error) {
	if runs <= 0 {
		runs = 3
	}
	cfg := hostmon.DefaultConfig()
	var rows []Fig11Row
	for i := 0; i < runs; i++ {
		c := cfg
		c.WithMonitor = true
		c.Seed = int64(i + 1)
		m, err := hostmon.MeasureAllGather(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Label:      fmt.Sprintf("with-monitor-%d", i+1),
			CPU:        m.CPU,
			AllocBytes: m.AllocBytes,
			SimTime:    m.SimTime,
		})
	}
	c := cfg
	c.WithMonitor = false
	m, err := hostmon.MeasureAllGather(c)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig11Row{
		Label:      "without-monitor",
		CPU:        m.CPU,
		AllocBytes: m.AllocBytes,
		SimTime:    m.SimTime,
	})
	return rows, nil
}

// Fig12Row is one point of the Fig 12 sweep.
type Fig12Row struct {
	Kind        scenario.AnomalyKind
	RTTFactor   float64
	DetectCount int
	Metrics     scenario.Metrics
}

// Fig12 sweeps Vedrfolnir's two detection parameters — RTT threshold
// ∈ {120%, 180%, 240%} and detections per step ∈ {1, 3, 5} — over every
// scenario.
func Fig12(cfg scenario.Config, counts map[scenario.AnomalyKind]int) ([]Fig12Row, error) {
	factors := []float64{1.2, 1.8, 2.4}
	detects := []int{1, 3, 5}
	var out []Fig12Row
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		for _, f := range factors {
			for _, d := range detects {
				opts := scenario.DefaultRunOptions(cfg)
				opts.Monitor.RTTFactor = f
				opts.Monitor.MaxDetectPerStep = d
				row := Fig12Row{Kind: kind, RTTFactor: f, DetectCount: d}
				for seed := 0; seed < n; seed++ {
					cs, err := scenario.GenerateCase(kind, int64(seed), cfg)
					if err != nil {
						return nil, err
					}
					res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, opts)
					if err != nil {
						return nil, err
					}
					row.Metrics.Add(res.Outcome)
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

// Fig13aRow is one fixed-RTT-threshold ablation point: precision and
// overhead of Vedrfolnir when the step-grained threshold is replaced by a
// fixed one (contention scenario, ≤3 detections/step).
type Fig13aRow struct {
	Threshold      simtime.Duration // 0 = step-grained (the real mechanism)
	Metrics        scenario.Metrics
	TelemetryBytes int64
}

// Fig13a runs the fixed-threshold ablation.
func Fig13a(cfg scenario.Config, cases int, thresholds []simtime.Duration) ([]Fig13aRow, error) {
	var out []Fig13aRow
	all := append([]simtime.Duration{0}, thresholds...)
	for _, th := range all {
		opts := scenario.DefaultRunOptions(cfg)
		opts.Monitor.FixedRTTThreshold = th
		opts.Monitor.MaxDetectPerStep = 3
		row := Fig13aRow{Threshold: th}
		var telem int64
		for seed := 0; seed < cases; seed++ {
			cs, err := scenario.GenerateCase(scenario.Contention, int64(seed), cfg)
			if err != nil {
				return nil, err
			}
			res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, opts)
			if err != nil {
				return nil, err
			}
			row.Metrics.Add(res.Outcome)
			telem += res.Overhead.TelemetryBytes
		}
		row.TelemetryBytes = telem / int64(cases)
		out = append(out, row)
	}
	return out, nil
}

// Fig13bRow is one detection-count-allocation ablation point.
type Fig13bRow struct {
	Label          string
	DetectCount    int // 0 = unrestricted (Hawkeye-like triggering)
	Metrics        scenario.Metrics
	TelemetryBytes int64
}

// Fig13b compares bounded detection counts against unrestricted triggering
// on the contention scenario.
func Fig13b(cfg scenario.Config, cases int, detects []int) ([]Fig13bRow, error) {
	var out []Fig13bRow
	run := func(label string, mutate func(*scenario.RunOptions), count int) error {
		opts := scenario.DefaultRunOptions(cfg)
		mutate(&opts)
		row := Fig13bRow{Label: label, DetectCount: count}
		var telem int64
		for seed := 0; seed < cases; seed++ {
			cs, err := scenario.GenerateCase(scenario.Contention, int64(seed), cfg)
			if err != nil {
				return err
			}
			res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, opts)
			if err != nil {
				return err
			}
			row.Metrics.Add(res.Outcome)
			telem += res.Overhead.TelemetryBytes
		}
		row.TelemetryBytes = telem / int64(cases)
		out = append(out, row)
		return nil
	}
	for _, d := range detects {
		d := d
		if err := run(fmt.Sprintf("max-%d-per-step", d), func(o *scenario.RunOptions) {
			o.Monitor.MaxDetectPerStep = d
		}, d); err != nil {
			return nil, err
		}
	}
	if err := run("unrestricted", func(o *scenario.RunOptions) {
		o.Monitor.Unrestricted = true
	}, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// CaseStudy is the Fig 14 reproduction: the Fig 2a-style contention with
// one small (BF1 ≈ 90 MB) and one large (BF2 ≈ 450 MB) background flow.
type CaseStudy struct {
	Diag        *diagnose.Diagnosis
	WaitDOT     string
	ProvDOT     string
	BF1, BF2    fabric.FlowKey
	BF1Score    float64
	BF2Score    float64
	CriticalStr string
}

// Fig14 runs the case study and renders its graphs.
func Fig14(cfg scenario.Config) (*CaseStudy, error) {
	cs := scenario.Case{Kind: scenario.Contention, Seed: 14}
	// BF1 (small) collides with the flow into rank 3; BF2 (5× larger)
	// collides with the cross-pod flow into rank 4 — the chain that
	// bounds the collective — mirroring the Fig 2a placement where the
	// large background flow dominates the rating.
	bf1 := fabric.FlowKey{Src: 8, Dst: 3, SrcPort: 9000, DstPort: 9001, Proto: 17}
	bf2 := fabric.FlowKey{Src: 12, Dst: 4, SrcPort: 9010, DstPort: 9011, Proto: 17}
	cs.Flows = []scenario.InjectedFlow{
		{Key: bf1, Bytes: cfg.ScaledBytes(90e6), StartAt: 0},
		{Key: bf2, Bytes: cfg.ScaledBytes(450e6), StartAt: 0},
	}
	res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, scenario.DefaultRunOptions(cfg))
	if err != nil {
		return nil, err
	}
	study := &CaseStudy{
		Diag:    res.Diag,
		BF1:     bf1,
		BF2:     bf2,
		WaitDOT: "",
		ProvDOT: "",
	}
	res.Diag.WaitGraph.Prune()
	study.WaitDOT = viz.WaitGraphDOT(res.Diag.WaitGraph)
	study.ProvDOT = viz.ProvenanceDOT(res.Diag.Graph)
	for _, r := range res.Diag.Ratings {
		switch r.Flow {
		case bf1:
			study.BF1Score = r.Score
		case bf2:
			study.BF2Score = r.Score
		}
	}
	var parts []string
	for _, ref := range res.Diag.CriticalPath {
		parts = append(parts, fmt.Sprintf("F%dS%d", ref.Host, ref.Step))
	}
	study.CriticalStr = strings.Join(parts, " -> ")
	return study, nil
}
