// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV): the precision/recall comparison (Fig 9), processing and
// bandwidth overhead (Fig 10), host monitor overhead (Fig 11), the RTT
// threshold × detection count sweep (Fig 12), the step-aware ablations
// (Fig 13), and the Fig 14 case study. Each figure has a typed row form so
// cmd/vedrbench can print the same series the paper plots and tests can
// assert their shape.
//
// Every case-grid harness (Figs 9/10/12/13, the extension sweep, the
// slowdown distributions) routes through one entry point — the
// internal/sweep engine — which fans the independent cases out over a
// worker pool, journals them for checkpoint/resume, and merges results in
// job order so figure rows are byte-identical at any worker count.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/hostmon"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/sweep"
	"vedrfolnir/internal/viz"
)

// Kinds are the four evaluated anomaly scenarios in paper order.
var Kinds = []scenario.AnomalyKind{
	scenario.Contention, scenario.Incast, scenario.PFCStorm, scenario.PFCBackpressure,
}

// Systems are the compared diagnosis systems in paper order.
var Systems = []scenario.SystemKind{
	scenario.Vedrfolnir, scenario.HawkeyeMaxR, scenario.HawkeyeMinR, scenario.FullPolling,
}

// PaperCaseCounts is the §IV-A case census: 60/60/40/60.
func PaperCaseCounts() map[scenario.AnomalyKind]int {
	return map[scenario.AnomalyKind]int{
		scenario.Contention:      60,
		scenario.Incast:          60,
		scenario.PFCStorm:        40,
		scenario.PFCBackpressure: 60,
	}
}

// SmallCaseCounts is a fast census for tests and -short benches.
func SmallCaseCounts() map[scenario.AnomalyKind]int {
	return map[scenario.AnomalyKind]int{
		scenario.Contention:      6,
		scenario.Incast:          6,
		scenario.PFCStorm:        4,
		scenario.PFCBackpressure: 6,
	}
}

// Cell is one (scenario, system) aggregate: the quantities behind Figs 9
// and 10.
type Cell struct {
	Kind   scenario.AnomalyKind
	System scenario.SystemKind
	Cases  int
	// Failed counts cases whose simulation failed (captured per-job by
	// the sweep engine); they are excluded from the aggregates.
	Failed int

	Metrics scenario.Metrics

	// Mean per-case overheads.
	TelemetryBytes int64 // Fig 10a: processing overhead
	BandwidthBytes int64 // Fig 10b: polling + notifications + reports
}

// Precision of the cell.
func (c Cell) Precision() float64 { return c.Metrics.Precision() }

// Recall of the cell.
func (c Cell) Recall() float64 { return c.Metrics.Recall() }

// CellJobs is the Fig 9/10 job grid: every anomaly kind × system × seed,
// in paper order. The grid order is the merge order, so it must stay
// stable for journals to resume and rows to stay byte-identical.
func CellJobs(counts map[scenario.AnomalyKind]int, systems []scenario.SystemKind) []sweep.Job {
	var jobs []sweep.Job
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		for _, sys := range systems {
			for seed := 0; seed < n; seed++ {
				jobs = append(jobs, sweep.Job{Kind: kind, Seed: int64(seed), System: sys})
			}
		}
	}
	return jobs
}

// cursor walks a summary's job-ordered results one at a time, mirroring
// the loop order of the job builder that produced them.
func cursor(sum *sweep.Summary) func() sweep.Result {
	i := 0
	return func() sweep.Result {
		r := sum.Results[i]
		i++
		return r
	}
}

// finish rejects interrupted sweeps: figure aggregation needs every case.
func finish(sum *sweep.Summary, err error) (*sweep.Summary, error) {
	if err != nil {
		return nil, err
	}
	if sum.Interrupted {
		return nil, fmt.Errorf("experiments: sweep interrupted with %d cases pending", len(sum.Pending))
	}
	return sum, nil
}

// Sweep runs counts[kind] cases per anomaly kind under every system and
// aggregates them. Fig 9 reads the Metrics; Fig 10 reads the overheads.
// The paper reports Fig 9 "with optimal parameters": detection count 5.
// Scheduling (worker count, journal, progress) comes from sw; a failing
// case is excluded from its cell and counted in Cell.Failed.
func Sweep(cfg scenario.Config, counts map[scenario.AnomalyKind]int,
	systems []scenario.SystemKind, opts scenario.RunOptions, sw sweep.Options) ([]Cell, error) {

	sum, err := finish(sweep.Run(CellJobs(counts, systems), sweep.Cases(cfg, opts), sw))
	if err != nil {
		return nil, err
	}
	next := cursor(sum)
	var out []Cell
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		for _, sys := range systems {
			cell := Cell{Kind: kind, System: sys, Cases: n}
			var telem, bw int64
			for seed := 0; seed < n; seed++ {
				r := next()
				if r.Err != "" {
					cell.Failed++
					continue
				}
				cell.Metrics.Add(r.Outcome)
				telem += r.TelemetryBytes
				bw += r.BandwidthBytes
			}
			if ok := cell.Cases - cell.Failed; ok > 0 {
				cell.TelemetryBytes = telem / int64(ok)
				cell.BandwidthBytes = bw / int64(ok)
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// Fig11Row is one bar group of Fig 11.
type Fig11Row struct {
	Label      string
	CPU        time.Duration
	AllocBytes uint64
	SimTime    simtime.Duration
}

// Fig11 measures the host monitor's in-process overhead: three monitored
// runs against an unmonitored baseline, as the paper's testbed experiment
// does with NCCL. It measures real CPU time, so it stays sequential — the
// one harness the sweep engine must not parallelize.
func Fig11(runs int) ([]Fig11Row, error) {
	if runs <= 0 {
		runs = 3
	}
	cfg := hostmon.DefaultConfig()
	var rows []Fig11Row
	for i := 0; i < runs; i++ {
		c := cfg
		c.WithMonitor = true
		c.Seed = int64(i + 1)
		m, err := hostmon.MeasureAllGather(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Label:      fmt.Sprintf("with-monitor-%d", i+1),
			CPU:        m.CPU,
			AllocBytes: m.AllocBytes,
			SimTime:    m.SimTime,
		})
	}
	c := cfg
	c.WithMonitor = false
	m, err := hostmon.MeasureAllGather(c)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Fig11Row{
		Label:      "without-monitor",
		CPU:        m.CPU,
		AllocBytes: m.AllocBytes,
		SimTime:    m.SimTime,
	})
	return rows, nil
}

// Fig12Row is one point of the Fig 12 sweep.
type Fig12Row struct {
	Kind        scenario.AnomalyKind
	RTTFactor   float64
	DetectCount int
	Failed      int
	Metrics     scenario.Metrics
}

// fig12Factors and fig12Detects are the paper's parameter grid: RTT
// threshold ∈ {120%, 180%, 240%} and detections per step ∈ {1, 3, 5}.
var (
	fig12Factors = []float64{1.2, 1.8, 2.4}
	fig12Detects = []int{1, 3, 5}
)

// Fig12Jobs is the Fig 12 grid: kind × RTT factor × detection count × seed
// under Vedrfolnir.
func Fig12Jobs(counts map[scenario.AnomalyKind]int) []sweep.Job {
	var jobs []sweep.Job
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		for _, f := range fig12Factors {
			for _, d := range fig12Detects {
				for seed := 0; seed < n; seed++ {
					jobs = append(jobs, sweep.Job{
						Kind: kind, Seed: int64(seed), System: scenario.Vedrfolnir,
						Params: sweep.Params{RTTFactor: f, MaxDetectPerStep: d},
					})
				}
			}
		}
	}
	return jobs
}

// Fig12 sweeps Vedrfolnir's two detection parameters over every scenario.
func Fig12(cfg scenario.Config, counts map[scenario.AnomalyKind]int, sw sweep.Options) ([]Fig12Row, error) {
	sum, err := finish(sweep.Run(Fig12Jobs(counts), sweep.Cases(cfg, scenario.DefaultRunOptions(cfg)), sw))
	if err != nil {
		return nil, err
	}
	next := cursor(sum)
	var out []Fig12Row
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		for _, f := range fig12Factors {
			for _, d := range fig12Detects {
				row := Fig12Row{Kind: kind, RTTFactor: f, DetectCount: d}
				for seed := 0; seed < n; seed++ {
					r := next()
					if r.Err != "" {
						row.Failed++
						continue
					}
					row.Metrics.Add(r.Outcome)
				}
				out = append(out, row)
			}
		}
	}
	return out, nil
}

// Fig13aRow is one fixed-RTT-threshold ablation point: precision and
// overhead of Vedrfolnir when the step-grained threshold is replaced by a
// fixed one (contention scenario, ≤3 detections/step).
type Fig13aRow struct {
	Threshold      simtime.Duration // 0 = step-grained (the real mechanism)
	Failed         int
	Metrics        scenario.Metrics
	TelemetryBytes int64
}

// Fig13aThresholds is the fixed-threshold grid the ablation compares
// against the step-grained mechanism: 1–8× a 30 µs paper-scale base,
// scaled to the workload.
func Fig13aThresholds(cfg scenario.Config) []simtime.Duration {
	base := simtime.Duration(float64(30*time.Microsecond) * cfg.Scale * 90)
	return []simtime.Duration{base, 2 * base, 4 * base, 8 * base}
}

// Fig13aJobs is the Fig 13a grid: {step-grained, thresholds...} × seed on
// the contention scenario.
func Fig13aJobs(cases int, thresholds []simtime.Duration) []sweep.Job {
	all := append([]simtime.Duration{0}, thresholds...)
	var jobs []sweep.Job
	for _, th := range all {
		for seed := 0; seed < cases; seed++ {
			jobs = append(jobs, sweep.Job{
				Kind: scenario.Contention, Seed: int64(seed), System: scenario.Vedrfolnir,
				Params: sweep.Params{FixedRTTThreshold: th, MaxDetectPerStep: 3},
			})
		}
	}
	return jobs
}

// Fig13a runs the fixed-threshold ablation.
func Fig13a(cfg scenario.Config, cases int, thresholds []simtime.Duration, sw sweep.Options) ([]Fig13aRow, error) {
	sum, err := finish(sweep.Run(Fig13aJobs(cases, thresholds),
		sweep.Cases(cfg, scenario.DefaultRunOptions(cfg)), sw))
	if err != nil {
		return nil, err
	}
	next := cursor(sum)
	var out []Fig13aRow
	for _, th := range append([]simtime.Duration{0}, thresholds...) {
		row := Fig13aRow{Threshold: th}
		var telem int64
		for seed := 0; seed < cases; seed++ {
			r := next()
			if r.Err != "" {
				row.Failed++
				continue
			}
			row.Metrics.Add(r.Outcome)
			telem += r.TelemetryBytes
		}
		if ok := cases - row.Failed; ok > 0 {
			row.TelemetryBytes = telem / int64(ok)
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig13bRow is one detection-count-allocation ablation point.
type Fig13bRow struct {
	Label          string
	DetectCount    int // 0 = unrestricted (Hawkeye-like triggering)
	Failed         int
	Metrics        scenario.Metrics
	TelemetryBytes int64
}

// Fig13bJobs is the Fig 13b grid: each bounded detection count plus the
// unrestricted setting, × seed, on the contention scenario.
func Fig13bJobs(cases int, detects []int) []sweep.Job {
	var jobs []sweep.Job
	add := func(p sweep.Params) {
		for seed := 0; seed < cases; seed++ {
			jobs = append(jobs, sweep.Job{
				Kind: scenario.Contention, Seed: int64(seed), System: scenario.Vedrfolnir,
				Params: p,
			})
		}
	}
	for _, d := range detects {
		add(sweep.Params{MaxDetectPerStep: d})
	}
	add(sweep.Params{Unrestricted: true})
	return jobs
}

// Fig13b compares bounded detection counts against unrestricted triggering
// on the contention scenario.
func Fig13b(cfg scenario.Config, cases int, detects []int, sw sweep.Options) ([]Fig13bRow, error) {
	sum, err := finish(sweep.Run(Fig13bJobs(cases, detects),
		sweep.Cases(cfg, scenario.DefaultRunOptions(cfg)), sw))
	if err != nil {
		return nil, err
	}
	next := cursor(sum)
	var out []Fig13bRow
	collect := func(label string, count int) {
		row := Fig13bRow{Label: label, DetectCount: count}
		var telem int64
		for seed := 0; seed < cases; seed++ {
			r := next()
			if r.Err != "" {
				row.Failed++
				continue
			}
			row.Metrics.Add(r.Outcome)
			telem += r.TelemetryBytes
		}
		if ok := cases - row.Failed; ok > 0 {
			row.TelemetryBytes = telem / int64(ok)
		}
		out = append(out, row)
	}
	for _, d := range detects {
		collect(fmt.Sprintf("max-%d-per-step", d), d)
	}
	collect("unrestricted", 0)
	return out, nil
}

// CaseStudy is the Fig 14 reproduction: the Fig 2a-style contention with
// one small (BF1 ≈ 90 MB) and one large (BF2 ≈ 450 MB) background flow.
type CaseStudy struct {
	Diag        *diagnose.Diagnosis
	WaitDOT     string
	ProvDOT     string
	BF1, BF2    fabric.FlowKey
	BF1Score    float64
	BF2Score    float64
	CriticalStr string
}

// Fig14 runs the case study and renders its graphs.
func Fig14(cfg scenario.Config) (*CaseStudy, error) { return Fig14Obs(cfg, nil) }

// Fig14Obs runs the case study with an observability scope threaded
// through the whole pipeline — the contention timeline, monitor
// detections, PFC events, and analyzer phases all land in the scope's
// trace, making this the reference workload for trace golden tests.
func Fig14Obs(cfg scenario.Config, scope *obs.Scope) (*CaseStudy, error) {
	cs := scenario.Case{Kind: scenario.Contention, Seed: 14}
	// BF1 (small) collides with the flow into rank 3; BF2 (5× larger)
	// collides with the cross-pod flow into rank 4 — the chain that
	// bounds the collective — mirroring the Fig 2a placement where the
	// large background flow dominates the rating.
	bf1 := fabric.FlowKey{Src: 8, Dst: 3, SrcPort: 9000, DstPort: 9001, Proto: 17}
	bf2 := fabric.FlowKey{Src: 12, Dst: 4, SrcPort: 9010, DstPort: 9011, Proto: 17}
	cs.Flows = []scenario.InjectedFlow{
		{Key: bf1, Bytes: cfg.ScaledBytes(90e6), StartAt: 0},
		{Key: bf2, Bytes: cfg.ScaledBytes(450e6), StartAt: 0},
	}
	opts := scenario.DefaultRunOptions(cfg)
	opts.Obs = scope
	res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, opts)
	if err != nil {
		return nil, err
	}
	study := &CaseStudy{
		Diag:    res.Diag,
		BF1:     bf1,
		BF2:     bf2,
		WaitDOT: "",
		ProvDOT: "",
	}
	res.Diag.WaitGraph.Prune()
	study.WaitDOT = viz.WaitGraphDOT(res.Diag.WaitGraph)
	study.ProvDOT = viz.ProvenanceDOT(res.Diag.Graph)
	for _, r := range res.Diag.Ratings {
		switch r.Flow {
		case bf1:
			study.BF1Score = r.Score
		case bf2:
			study.BF2Score = r.Score
		}
	}
	var parts []string
	for _, ref := range res.Diag.CriticalPath {
		parts = append(parts, fmt.Sprintf("F%dS%d", ref.Host, ref.Step))
	}
	study.CriticalStr = strings.Join(parts, " -> ")
	return study, nil
}
