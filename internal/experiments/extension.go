package experiments

import (
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/stats"
	"vedrfolnir/internal/sweep"
)

// ExtKinds are the §II-B anomalies implemented beyond the paper's evaluated
// four (forwarding loops and load imbalance).
var ExtKinds = []scenario.AnomalyKind{scenario.Loop, scenario.LoadImbalance}

// ExtensionJobs is the extension-scenario grid: ExtKinds × seed under
// Vedrfolnir.
func ExtensionJobs(cases int) []sweep.Job {
	var jobs []sweep.Job
	for _, kind := range ExtKinds {
		for seed := 0; seed < cases; seed++ {
			jobs = append(jobs, sweep.Job{Kind: kind, Seed: int64(seed), System: scenario.Vedrfolnir})
		}
	}
	return jobs
}

// ExtensionSweep runs the extension scenarios under Vedrfolnir and
// aggregates their outcomes — the repo's equivalent of extending the
// paper's Fig 9 to the remaining §II-B anomaly types.
func ExtensionSweep(cfg scenario.Config, cases int, sw sweep.Options) ([]Cell, error) {
	sum, err := finish(sweep.Run(ExtensionJobs(cases),
		sweep.Cases(cfg, scenario.DefaultRunOptions(cfg)), sw))
	if err != nil {
		return nil, err
	}
	next := cursor(sum)
	var out []Cell
	for _, kind := range ExtKinds {
		cell := Cell{Kind: kind, System: scenario.Vedrfolnir, Cases: cases}
		var telem, bw int64
		for seed := 0; seed < cases; seed++ {
			r := next()
			if r.Err != "" {
				cell.Failed++
				continue
			}
			cell.Metrics.Add(r.Outcome)
			telem += r.TelemetryBytes
			bw += r.BandwidthBytes
		}
		if ok := cell.Cases - cell.Failed; ok > 0 {
			cell.TelemetryBytes = telem / int64(ok)
			cell.BandwidthBytes = bw / int64(ok)
		}
		out = append(out, cell)
	}
	return out, nil
}

// SlowdownRow summarizes the distribution of per-step slowdowns (actual
// execution time minus the fastest same-index step) one anomaly kind
// induces on the collective — the degradation the diagnosis explains.
type SlowdownRow struct {
	Kind    scenario.AnomalyKind
	Summary stats.Summary
}

// SlowdownJobs is the slowdown-distribution grid: every evaluated kind ×
// seed under Vedrfolnir at its default operating point.
func SlowdownJobs(counts map[scenario.AnomalyKind]int) []sweep.Job {
	var jobs []sweep.Job
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		for seed := 0; seed < n; seed++ {
			jobs = append(jobs, sweep.Job{Kind: kind, Seed: int64(seed), System: scenario.Vedrfolnir})
		}
	}
	return jobs
}

// Slowdowns gathers per-step slowdown distributions across cases, per
// anomaly kind. The samples ride along in each job's Result, so the
// distribution is assembled from the job-ordered merge and is identical at
// any worker count.
func Slowdowns(cfg scenario.Config, counts map[scenario.AnomalyKind]int, sw sweep.Options) ([]SlowdownRow, error) {
	sum, err := finish(sweep.Run(SlowdownJobs(counts),
		sweep.Cases(cfg, scenario.DefaultRunOptions(cfg)), sw))
	if err != nil {
		return nil, err
	}
	next := cursor(sum)
	var out []SlowdownRow
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		var sample []simtime.Duration
		for seed := 0; seed < n; seed++ {
			r := next()
			if r.Err != "" {
				continue
			}
			sample = append(sample, r.Samples...)
		}
		out = append(out, SlowdownRow{Kind: kind, Summary: stats.Summarize(sample)})
	}
	return out, nil
}
