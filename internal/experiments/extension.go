package experiments

import (
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/stats"
)

// ExtKinds are the §II-B anomalies implemented beyond the paper's evaluated
// four (forwarding loops and load imbalance).
var ExtKinds = []scenario.AnomalyKind{scenario.Loop, scenario.LoadImbalance}

// ExtensionSweep runs the extension scenarios under Vedrfolnir and
// aggregates their outcomes — the repo's equivalent of extending the
// paper's Fig 9 to the remaining §II-B anomaly types.
func ExtensionSweep(cfg scenario.Config, cases int) ([]Cell, error) {
	opts := scenario.DefaultRunOptions(cfg)
	var out []Cell
	for _, kind := range ExtKinds {
		cell := Cell{Kind: kind, System: scenario.Vedrfolnir, Cases: cases}
		var telem, bw int64
		for seed := 0; seed < cases; seed++ {
			cs, err := scenario.GenerateCase(kind, int64(seed), cfg)
			if err != nil {
				return nil, err
			}
			res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, opts)
			if err != nil {
				return nil, err
			}
			cell.Metrics.Add(res.Outcome)
			telem += res.Overhead.TelemetryBytes
			bw += res.Overhead.Bandwidth()
		}
		cell.TelemetryBytes = telem / int64(cases)
		cell.BandwidthBytes = bw / int64(cases)
		out = append(out, cell)
	}
	return out, nil
}

// SlowdownRow summarizes the distribution of per-step slowdowns (actual
// execution time minus the fastest same-index step) one anomaly kind
// induces on the collective — the degradation the diagnosis explains.
type SlowdownRow struct {
	Kind    scenario.AnomalyKind
	Summary stats.Summary
}

// Slowdowns gathers per-step slowdown distributions across cases, per
// anomaly kind.
func Slowdowns(cfg scenario.Config, counts map[scenario.AnomalyKind]int) ([]SlowdownRow, error) {
	opts := scenario.DefaultRunOptions(cfg)
	var out []SlowdownRow
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		var sample []simtime.Duration
		for seed := 0; seed < n; seed++ {
			cs, err := scenario.GenerateCase(kind, int64(seed), cfg)
			if err != nil {
				return nil, err
			}
			res, err := scenario.Run(cs, scenario.Vedrfolnir, cfg, opts)
			if err != nil {
				return nil, err
			}
			minByStep := map[int]simtime.Duration{}
			for _, rec := range res.Records {
				d := rec.End.Sub(rec.Start)
				if cur, ok := minByStep[rec.Step]; !ok || d < cur {
					minByStep[rec.Step] = d
				}
			}
			for _, rec := range res.Records {
				slow := rec.End.Sub(rec.Start) - minByStep[rec.Step]
				if slow > 0 {
					sample = append(sample, slow)
				}
			}
		}
		out = append(out, SlowdownRow{Kind: kind, Summary: stats.Summarize(sample)})
	}
	return out, nil
}
