package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite golden files")

func fig14Trace(t *testing.T) []byte {
	t.Helper()
	scope := &obs.Scope{Trace: obs.NewTracer(), Metrics: obs.NewRegistry()}
	if _, err := Fig14Obs(scenario.ConfigForScale(360), scope); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := scope.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFig14TraceGolden pins the Chrome trace of the Fig 14 contention case
// study byte-for-byte. Any nondeterminism in the pipeline — map iteration,
// float formatting, goroutine interleaving — shows up here as a diff.
func TestFig14TraceGolden(t *testing.T) {
	got := fig14Trace(t)
	golden := filepath.Join("testdata", "fig14.trace.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Fig 14 trace drifted from golden (%d vs %d bytes); "+
			"if the change is intentional, regenerate with -update", len(got), len(want))
	}
}

// TestFig14TraceRepeatable runs the case study twice in-process: the trace
// and flattened metrics must come out byte-identical.
func TestFig14TraceRepeatable(t *testing.T) {
	a, b := fig14Trace(t), fig14Trace(t)
	if !bytes.Equal(a, b) {
		t.Error("two Fig 14 runs produced different traces")
	}
}

// TestFig14Metrics sanity-checks the registry side of the case-study run:
// the cross-cutting counters the tentpole promises must all be populated.
func TestFig14Metrics(t *testing.T) {
	scope := &obs.Scope{Trace: obs.NewTracer(), Metrics: obs.NewRegistry()}
	if _, err := Fig14Obs(scenario.ConfigForScale(360), scope); err != nil {
		t.Fatal(err)
	}
	flat := scope.Metrics.Flatten()
	for _, name := range []string{
		"vedr_collective_steps_total",
		"vedr_sim_events_total",
		"vedr_sim_event_queue_max",
		"vedr_monitor_detections_total",
		"vedr_telemetry_bytes_total",
		"vedr_diagnose_findings_total",
		"vedr_provenance_edges_total",
		"vedr_step_duration_ns_count",
	} {
		if flat[name] <= 0 {
			t.Errorf("%s = %d, want > 0 (full metric set: %v)", name, flat[name], flat)
		}
	}
}
