package experiments

import (
	"strings"
	"testing"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/monitor"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/sweep"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/waitgraph"
)

// fastConfig is the reduced-scale configuration for unit tests (mirrors
// scenario's test config: 1 MB steps, proportional fabric thresholds).
func fastConfig() scenario.Config {
	cfg := scenario.DefaultConfig()
	cfg.Scale = 1.0 / 360
	cfg.StepBytes = int64(1e6)
	cfg.CellSize = 16 << 10
	cfg.Fabric.PFCPauseThreshold = 64 << 10
	cfg.Fabric.PFCResumeThreshold = 32 << 10
	cfg.Fabric.ECNThreshold = 32 << 10
	return cfg
}

func tinyCounts() map[scenario.AnomalyKind]int {
	return map[scenario.AnomalyKind]int{
		scenario.Contention:      3,
		scenario.Incast:          3,
		scenario.PFCStorm:        2,
		scenario.PFCBackpressure: 3,
	}
}

func TestSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	cfg := fastConfig()
	cells, err := Sweep(cfg, tinyCounts(), Systems, scenario.DefaultRunOptions(cfg), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4*4 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	byKey := map[[2]int]Cell{}
	for _, c := range cells {
		byKey[[2]int{int(c.Kind), int(c.System)}] = c
		if c.Metrics.TP+c.Metrics.FP+c.Metrics.FN != c.Cases {
			t.Fatalf("%v/%v: outcome accounting broken: %+v", c.Kind, c.System, c.Metrics)
		}
	}
	// Headline shapes: Vedrfolnir's telemetry overhead is below
	// Hawkeye-MinR's and full polling's in every scenario.
	for _, kind := range Kinds {
		ved := byKey[[2]int{int(kind), int(scenario.Vedrfolnir)}]
		minr := byKey[[2]int{int(kind), int(scenario.HawkeyeMinR)}]
		full := byKey[[2]int{int(kind), int(scenario.FullPolling)}]
		if ved.TelemetryBytes > minr.TelemetryBytes {
			t.Errorf("%v: vedrfolnir %dB > hawkeye-minr %dB", kind, ved.TelemetryBytes, minr.TelemetryBytes)
		}
		if ved.TelemetryBytes >= full.TelemetryBytes {
			t.Errorf("%v: vedrfolnir %dB >= full polling %dB", kind, ved.TelemetryBytes, full.TelemetryBytes)
		}
	}
}

func TestFig11(t *testing.T) {
	rows, err := Fig11(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 2 monitored + 1 baseline", len(rows))
	}
	if rows[len(rows)-1].Label != "without-monitor" {
		t.Fatalf("last row must be the unmonitored baseline")
	}
	for _, r := range rows {
		if r.SimTime <= 0 {
			t.Fatalf("%s: collective did not complete", r.Label)
		}
	}
}

func TestFig12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	cfg := fastConfig()
	counts := map[scenario.AnomalyKind]int{scenario.Contention: 2, scenario.PFCBackpressure: 2}
	rows, err := Fig12(cfg, counts, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*9 {
		t.Fatalf("rows = %d, want 18 (2 kinds × 3 factors × 3 counts)", len(rows))
	}
	for _, r := range rows {
		if r.Metrics.TP+r.Metrics.FP+r.Metrics.FN != 2 {
			t.Fatalf("row %+v lost cases", r)
		}
	}
}

func TestFig13b(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	cfg := fastConfig()
	rows, err := Fig13b(cfg, 2, []int{1, 3}, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (two bounded + unrestricted)", len(rows))
	}
	unrestricted := rows[len(rows)-1]
	if unrestricted.Label != "unrestricted" {
		t.Fatalf("last row = %q", unrestricted.Label)
	}
	// The ablation's point: unrestricted triggering collects more.
	if unrestricted.TelemetryBytes <= rows[0].TelemetryBytes {
		t.Errorf("unrestricted %dB <= max-1 %dB", unrestricted.TelemetryBytes, rows[0].TelemetryBytes)
	}
}

func TestFig14CaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("case study is slow")
	}
	cfg := fastConfig()
	study, err := Fig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(study.WaitDOT, "digraph waiting") {
		t.Fatalf("missing waiting graph DOT")
	}
	if !strings.Contains(study.ProvDOT, "digraph provenance") {
		t.Fatalf("missing provenance DOT")
	}
	if study.CriticalStr == "" {
		t.Fatalf("no critical path")
	}
	// The paper's headline: the big background flow scores far above the
	// small one.
	if study.BF2Score <= study.BF1Score {
		t.Errorf("BF2 score %.0f <= BF1 score %.0f; expected the 5x larger flow to dominate",
			study.BF2Score, study.BF1Score)
	}
}

func TestTrainingSimLocalizesAnomaly(t *testing.T) {
	if testing.Short() {
		t.Skip("training stream is slow")
	}
	cfg := fastConfig()
	const iterations, disturbAt = 5, 2
	results, err := TrainingSim(cfg, iterations, disturbAt, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != iterations {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		hasContention := r.Diag.HasType(diagnose.FlowContention) || r.Diag.HasType(diagnose.Incast)
		if r.Index == disturbAt && !hasContention {
			t.Fatalf("iteration %d: injected anomaly not diagnosed", r.Index)
		}
		if r.Index != disturbAt && len(r.Diag.Culprits()) > 0 {
			t.Fatalf("iteration %d: phantom culprits %v", r.Index, r.Diag.Culprits())
		}
		if r.Duration <= 0 {
			t.Fatalf("iteration %d: no duration", r.Index)
		}
	}
	// The disturbed iteration must be slower than its neighbours.
	if results[disturbAt].Duration <= results[disturbAt-1].Duration {
		t.Fatalf("disturbed iteration not slower: %v vs %v",
			results[disturbAt].Duration, results[disturbAt-1].Duration)
	}
}

func TestTrainingSweepParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("training streams are slow")
	}
	cfg := fastConfig()
	const streams, iterations, disturbAt = 3, 3, 1
	seq, err := TrainingSweep(cfg, streams, iterations, disturbAt, 4<<20, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := TrainingSweep(cfg, streams, iterations, disturbAt, 4<<20, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != streams || len(par) != streams {
		t.Fatalf("rows: seq %d, par %d, want %d", len(seq), len(par), streams)
	}
	for s := range seq {
		if seq[s].Err != "" {
			t.Fatalf("stream %d failed: %s", s, seq[s].Err)
		}
		if !seq[s].DisturbDetected {
			t.Errorf("stream %d: disturbed iteration not diagnosed", s)
		}
		if len(seq[s].Iterations) != iterations {
			t.Fatalf("stream %d: %d iterations", s, len(seq[s].Iterations))
		}
		for it := range seq[s].Iterations {
			if seq[s].Iterations[it] != par[s].Iterations[it] {
				t.Fatalf("stream %d iteration %d: %v (workers=1) != %v (workers=4)",
					s, it, seq[s].Iterations[it], par[s].Iterations[it])
			}
		}
	}
	// Streams are differently seeded clusters: at least one pair of
	// streams must differ somewhere, or the fleet is degenerate.
	distinct := false
	for it := 0; it < iterations && !distinct; it++ {
		if seq[0].Iterations[it] != seq[1].Iterations[it] {
			distinct = true
		}
	}
	if !distinct {
		t.Error("streams 0 and 1 are identical; stream seeding is broken")
	}
}

func TestLargeScaleK8(t *testing.T) {
	// §V applicability: a K=8 fat-tree (80 switches, 128 hosts) running a
	// 16-rank collective, monitored end to end. Complexity of the waiting
	// graph is O(N·S) and of the provenance graph O(switches×reports);
	// this guards the implementation against accidental blow-ups.
	if testing.Short() {
		t.Skip("large-scale run")
	}
	ft, err := topo.NewFatTree(topo.FatTreeConfig{
		K:         8,
		Bandwidth: 100 * simtime.Gbps,
		Delay:     2 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Switches()) != 80 || len(ft.Hosts()) != 128 {
		t.Fatalf("K=8 shape: %d switches, %d hosts", len(ft.Switches()), len(ft.Hosts()))
	}
	k := sim.New(88)
	k.SetEventLimit(200_000_000)
	fcfg := fabric.DefaultConfig()
	fcfg.PFCPauseThreshold = 64 << 10
	fcfg.PFCResumeThreshold = 32 << 10
	fcfg.ECNThreshold = 32 << 10
	net := fabric.NewNetwork(k, ft.Topology, fcfg)
	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = 16 << 10
	hosts := map[topo.NodeID]*rdma.Host{}
	ranks := ft.Hosts()[:16]
	extras := ft.Hosts()[16:]
	for _, id := range ft.Hosts() {
		h, err := rdma.NewHost(k, net, id, rcfg)
		if err != nil {
			t.Fatal(err)
		}
		hosts[id] = h
	}
	schs, err := collective.Decompose(collective.Spec{
		Op: collective.AllGather, Alg: collective.Ring, Ranks: ranks, Bytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := collective.NewRunner(k, hosts, schs)
	if err != nil {
		t.Fatal(err)
	}
	run.Bind()
	mcfg := monitor.DefaultConfig()
	mcfg.CellSize = 16 << 10
	sys := monitor.NewSystem(k, net, run, hosts, mcfg)

	// Disturb two ranks from bystanders.
	hosts[extras[0]].Send(fabric.FlowKey{Src: extras[0], Dst: ranks[3], SrcPort: 9000, DstPort: 9001, Proto: 17}, 8<<20)
	hosts[extras[1]].Send(fabric.FlowKey{Src: extras[1], Dst: ranks[9], SrcPort: 9010, DstPort: 9011, Proto: 17}, 8<<20)

	run.OnComplete = func(at simtime.Time) { k.Stop() }
	run.Start()
	k.Run(simtime.Time(5 * time.Second))
	if done, _ := run.Done(); !done {
		t.Fatal("16-rank collective on K=8 did not complete")
	}
	cfs := map[fabric.FlowKey]bool{}
	for _, sch := range schs {
		for s := range sch.Steps {
			cfs[sch.FlowKey(s)] = true
		}
	}
	diag := diagnose.Analyze(diagnose.Input{
		Records: run.Records(),
		Reports: sys.Reports(),
		CFs:     cfs,
		StepOf: func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
			host, step, ok := run.StepOf(f)
			return waitgraph.StepRef{Host: host, Step: step}, ok
		},
	})
	if len(diag.CriticalPath) != 15 {
		t.Fatalf("critical path = %d steps, want 15 (N-1 for 16 ranks)", len(diag.CriticalPath))
	}
	if len(diag.Findings) == 0 {
		t.Fatalf("no findings despite two injected flows")
	}
}
