package experiments

import (
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/sweep"
)

// ChaosLossRates is the robustness grid's control-packet loss axis:
// healthy, 0.1%, 1%, and 5% uniform loss over the diagnosis traffic
// (notification packets, poll round trips, per-port telemetry responses).
var ChaosLossRates = []float64{0, 0.001, 0.01, 0.05}

// ChaosRow is one (scenario, loss rate) aggregate of the robustness grid:
// how the paper's precision/recall — and the new confidence annotation —
// hold up as the fabric eats the diagnosis traffic.
type ChaosRow struct {
	Kind     scenario.AnomalyKind
	LossRate float64
	Cases    int
	// Failed counts cases whose simulation failed (captured per-job);
	// Incomplete counts cases that hit the simulation deadline. Both are
	// excluded from the aggregates.
	Failed     int
	Incomplete int

	Metrics scenario.Metrics
	// MeanConfidence averages the diagnosis confidence over the cases
	// that completed (1.0 at zero loss, by construction).
	MeanConfidence float64
}

// ChaosJobs is the robustness grid: every §IV-A anomaly kind × loss rate ×
// seed under Vedrfolnir. Grid order is merge order; keep it stable.
func ChaosJobs(counts map[scenario.AnomalyKind]int) []sweep.Job {
	var jobs []sweep.Job
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		for _, rate := range ChaosLossRates {
			for seed := 0; seed < n; seed++ {
				jobs = append(jobs, sweep.Job{
					Kind: kind, Seed: int64(seed), System: scenario.Vedrfolnir,
					Params: sweep.Params{ChaosLoss: rate},
				})
			}
		}
	}
	return jobs
}

// Chaos runs the robustness grid and aggregates precision/recall/confidence
// per (scenario, loss rate).
func Chaos(cfg scenario.Config, counts map[scenario.AnomalyKind]int, sw sweep.Options) ([]ChaosRow, error) {
	sum, err := finish(sweep.Run(ChaosJobs(counts), sweep.Cases(cfg, scenario.DefaultRunOptions(cfg)), sw))
	if err != nil {
		return nil, err
	}
	next := cursor(sum)
	var out []ChaosRow
	for _, kind := range Kinds {
		n := counts[kind]
		if n == 0 {
			continue
		}
		for _, rate := range ChaosLossRates {
			row := ChaosRow{Kind: kind, LossRate: rate, Cases: n}
			var confSum float64
			var confN int
			for seed := 0; seed < n; seed++ {
				r := next()
				if r.Err != "" {
					row.Failed++
					continue
				}
				if !r.Completed {
					row.Incomplete++
					continue
				}
				row.Metrics.Add(r.Outcome)
				confSum += r.Confidence
				confN++
			}
			if confN > 0 {
				row.MeanConfidence = confSum / float64(confN)
			}
			out = append(out, row)
		}
	}
	return out, nil
}
