// Package diagnose is Vedrfolnir's analyzer (§III-D): it combines the
// waiting graph (performance bottleneck, critical flows) with per-step
// network provenance graphs (root causes, contributors) and answers the
// paper's three diagnostic questions — where are the bottlenecks, what is
// the network root cause, and how much does each contending flow matter.
// Anomaly types are matched by signature (§III-D2) and are extensible; the
// built-in set covers the four evaluated scenarios plus the loop and PFC
// deadlock signatures discussed in §II-B/§V.
package diagnose

import (
	"fmt"
	"sort"
	"strings"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/obs"
	"vedrfolnir/internal/provenance"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/waitgraph"
)

// AnomalyType classifies a finding.
type AnomalyType uint8

// Anomaly types, matching §II-B.
const (
	FlowContention AnomalyType = iota
	Incast
	PFCBackpressure
	PFCStorm
	ForwardingLoop
	PFCDeadlock
)

func (t AnomalyType) String() string {
	switch t {
	case FlowContention:
		return "flow-contention"
	case Incast:
		return "incast"
	case PFCBackpressure:
		return "pfc-backpressure"
	case PFCStorm:
		return "pfc-storm"
	case ForwardingLoop:
		return "forwarding-loop"
	case PFCDeadlock:
		return "pfc-deadlock"
	default:
		return fmt.Sprintf("anomaly(%d)", uint8(t))
	}
}

// Finding is one diagnosed anomaly.
type Finding struct {
	Type AnomalyType
	// Port is where the anomaly manifests (contention port, loop switch
	// port, or the first paused port on a PFC chain).
	Port topo.PortID
	// RootPort is the traced root-cause location for PFC anomalies — the
	// congested/injecting port at the end of the spreading path.
	RootPort topo.PortID
	// Chain is the traced PFC spreading path (upstream → root).
	Chain []topo.PortID
	// Culprits are the non-collective flows implicated, ranked by their
	// contribution to the affected collective flows.
	Culprits []fabric.FlowKey
	// Affected are the collective flows impacted.
	Affected []fabric.FlowKey
	// Injected marks a storm-signature root (pause without congestion).
	Injected bool
	// Confidence is the telemetry-coverage score behind this match: 1 when
	// every poll completed and every visited port answered, lower when the
	// signature was matched against partial telemetry.
	Confidence float64
}

// FlowRating is the Eq. 3 overall contribution of one flow.
type FlowRating struct {
	Flow  fabric.FlowKey
	Score float64
	// Confidence discounts the rating for missing telemetry and missing
	// step records (the Eq. 3 weights lean on both); 1 at full coverage.
	Confidence float64
}

// Coverage quantifies how much of the expected observation the analyzer
// actually received, the basis for all confidence annotations. A healthy
// run scores 1.0 everywhere.
type Coverage struct {
	// PortsPolled counts switch-port records received across all reports;
	// PortsMissed counts visited ports whose response was lost.
	PortsPolled, PortsMissed int
	// ReportsSeen counts telemetry reports received; PollsLost counts
	// detection polls whose round trip never completed.
	ReportsSeen, PollsLost int
	// RecordsSeen counts step records received; RecordsExpected is the
	// scheduled total (0 = unknown, treated as full coverage).
	RecordsSeen, RecordsExpected int
}

// PortScore is the fraction of visited switch ports that answered.
func (c Coverage) PortScore() float64 {
	total := c.PortsPolled + c.PortsMissed
	if total <= 0 {
		return 1
	}
	return float64(c.PortsPolled) / float64(total)
}

// PollScore is the fraction of triggered detections whose poll completed.
func (c Coverage) PollScore() float64 {
	total := c.ReportsSeen + c.PollsLost
	if total <= 0 {
		return 1
	}
	return float64(c.ReportsSeen) / float64(total)
}

// TelemetryScore combines port- and poll-level losses: the share of
// intended network observation that actually reached the analyzer.
func (c Coverage) TelemetryScore() float64 { return c.PortScore() * c.PollScore() }

// StepScore is the fraction of expected step records received (1 when the
// expectation is unknown).
func (c Coverage) StepScore() float64 {
	if c.RecordsExpected <= 0 || c.RecordsSeen >= c.RecordsExpected {
		return 1
	}
	return float64(c.RecordsSeen) / float64(c.RecordsExpected)
}

// Score is the overall diagnosis confidence.
func (c Coverage) Score() float64 { return c.TelemetryScore() * c.StepScore() }

// Diagnosis is the analyzer's structured result.
type Diagnosis struct {
	Findings []Finding
	// CriticalPath is the bottleneck step chain from the waiting graph.
	CriticalPath []waitgraph.StepRef
	// CriticalFlows are the 5-tuples of the steps on the critical path.
	CriticalFlows []fabric.FlowKey
	// Ratings are Eq. 3 scores for every contending flow, highest first.
	Ratings []FlowRating
	// PerCF holds Eq. 2 scores per (contender, collective flow) pair.
	PerCF map[fabric.FlowKey]map[fabric.FlowKey]float64
	// Graph is the aggregate provenance graph used for the findings.
	Graph *provenance.Graph
	// WaitGraph is the built waiting graph.
	WaitGraph *waitgraph.Graph
	// Coverage is the observation completeness behind this diagnosis;
	// Confidence is its overall Score (1 at full coverage).
	Coverage   Coverage
	Confidence float64
}

// Input bundles everything the analyzer consumes.
type Input struct {
	// Records are the host monitors' step reports.
	Records []collective.StepRecord
	// Reports are the retained telemetry reports.
	Reports []*telemetry.Report
	// CFs marks the collective flows (every step's 5-tuple).
	CFs map[fabric.FlowKey]bool
	// StepOf maps a collective flow to its (host, step); nil disables
	// per-step provenance graphs (everything lands in one graph).
	StepOf func(fabric.FlowKey) (waitgraph.StepRef, bool)
	// Expected returns a step's expected execution time for the Eq. 3
	// weights. When nil, the minimum observed execution time of the same
	// step index across hosts is used (the unimpeded hosts' time).
	Expected func(waitgraph.StepRef) simtime.Duration
	// MinCulpritScore suppresses contenders whose Eq. 2 score against
	// every affected CF is at or below this value (filters ACK-scale
	// noise). Zero keeps everything with a positive score.
	MinCulpritScore float64
	// IncastFanIn is the minimum number of same-destination culprits at
	// one port to classify the contention as incast (default 3).
	IncastFanIn int
	// RecordsExpected is the scheduled step-record total (0 = unknown)
	// and PollsLost the number of detections whose poll round trip never
	// completed; both feed the confidence annotations.
	RecordsExpected int
	PollsLost       int
	// Obs, when set, receives per-phase trace instants (at sim time ObsAt,
	// the analysis point — typically the collective's completion time) and
	// pipeline metrics. The nil default records nothing.
	Obs   *obs.Scope
	ObsAt simtime.Time
	// Stages, when set, records wall-time stage histograms around the
	// pipeline phases (perf observability); nil records nothing and the
	// diagnosis is identical either way.
	Stages *obs.Stages
}

// Analyze runs the full §III-D pipeline.
func Analyze(in Input) *Diagnosis {
	d := &Diagnosis{PerCF: map[fabric.FlowKey]map[fabric.FlowKey]float64{}}
	tr := in.Obs.T()
	tWait := in.Stages.WaitgraphTimer()
	tRate := in.Stages.ProvenanceTimer()
	tAll := in.Stages.DiagnoseTimer()
	tDiag0 := tAll.Begin()

	// 1. Waiting graph → bottleneck and critical flows.
	tWait0 := tWait.Begin()
	d.WaitGraph = waitgraph.Build(in.Records)
	path, _ := d.WaitGraph.CriticalPath()
	tWait.End(tWait0)
	d.CriticalPath = path
	for _, ref := range path {
		if rec, ok := d.WaitGraph.Record(ref); ok {
			d.CriticalFlows = append(d.CriticalFlows, rec.Flow)
		}
	}
	tr.Instant(obs.PidAnalyzer, 0, "phase", "waitgraph", in.ObsAt,
		obs.I("records", int64(len(in.Records))),
		obs.I("critical_steps", int64(len(d.CriticalPath))))

	// 2. Provenance graphs → signature findings. Reports are grouped by
	// triggering step and one graph is built per group (plus one for
	// reports no step claims); the aggregate graph is their Merge. Every
	// Graph aggregate is commutative, so the merged graph is
	// content-equal to building one graph over the full report set —
	// this is the same merge a sharded fleet applies across shard dumps
	// — and the per-step graphs are reused by the rating phase below.
	tRate0 := tRate.Begin()
	byStep, ungrouped := groupReports(in)
	refs := make([]waitgraph.StepRef, 0, len(byStep))
	for ref := range byStep {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Host != refs[j].Host {
			return refs[i].Host < refs[j].Host
		}
		return refs[i].Step < refs[j].Step
	})
	stepGraphs := make(map[waitgraph.StepRef]*provenance.Graph, len(byStep))
	parts := make([]*provenance.Graph, 0, len(byStep)+1)
	for _, ref := range refs {
		g := provenance.Build(byStep[ref], in.CFs)
		stepGraphs[ref] = g
		parts = append(parts, g)
	}
	parts = append(parts, provenance.Build(ungrouped, in.CFs))
	d.Graph = provenance.Merge(parts...)
	d.Findings = findAnomalies(d.Graph, in)
	var provEdges, provPorts int64
	if in.Obs.Enabled() {
		provEdges = provenanceEdges(d.Graph)
		provPorts = int64(len(d.Graph.Ports()))
	}
	tr.Instant(obs.PidAnalyzer, 0, "phase", "provenance", in.ObsAt,
		obs.I("reports", int64(len(in.Reports))),
		obs.I("ports", provPorts),
		obs.I("edges", provEdges),
		obs.I("findings", int64(len(d.Findings))))

	// 3. Contributor rating (Eqs. 2 and 3).
	d.rate(in, stepGraphs)
	tRate.End(tRate0)
	tr.Instant(obs.PidAnalyzer, 0, "phase", "rate", in.ObsAt,
		obs.I("ratings", int64(len(d.Ratings))))

	// 4. Confidence: score the observation coverage and annotate every
	// finding and rating with it, so a diagnosis built from partial
	// telemetry says so instead of presenting as fully informed.
	d.Coverage = Coverage{
		RecordsSeen:     len(in.Records),
		RecordsExpected: in.RecordsExpected,
		ReportsSeen:     len(in.Reports),
		PollsLost:       in.PollsLost,
	}
	for _, rep := range in.Reports {
		d.Coverage.PortsPolled += len(rep.Ports)
		d.Coverage.PortsMissed += rep.PortsMissed
	}
	d.Confidence = d.Coverage.Score()
	telem := d.Coverage.TelemetryScore()
	for i := range d.Findings {
		d.Findings[i].Confidence = telem
	}
	for i := range d.Ratings {
		d.Ratings[i].Confidence = d.Confidence
	}
	tr.Instant(obs.PidAnalyzer, 0, "phase", "confidence", in.ObsAt,
		obs.I("confidence_permille", int64(d.Confidence*1000)),
		obs.I("ports_polled", int64(d.Coverage.PortsPolled)),
		obs.I("polls_lost", int64(d.Coverage.PollsLost)))

	if m := in.Obs.M(); m != nil {
		m.Counter("vedr_diagnose_findings_total", "anomaly findings produced").Add(int64(len(d.Findings)))
		m.Counter("vedr_diagnose_ratings_total", "Eq. 3 flow ratings produced").Add(int64(len(d.Ratings)))
		m.Counter("vedr_provenance_edges_total", "flow-port and PFC edges in the aggregate provenance graph").Add(provEdges)
		m.Gauge("vedr_diagnose_confidence_permille", "overall diagnosis confidence ×1000").Set(int64(d.Confidence * 1000))
	}
	tAll.End(tDiag0)
	return d
}

// provenanceEdges counts the aggregate graph's e(f,p) and e(p_i,p_j)
// edges — the "how much structure did the analyzer see" metric.
func provenanceEdges(g *provenance.Graph) int64 {
	var edges int64
	for _, p := range g.Ports() {
		for _, f := range g.FlowsAt(p) {
			if g.HasFlowPortEdge(f, p) {
				edges++
			}
		}
	}
	for _, p := range g.PFCUpstreams() {
		edges += int64(len(g.PFCOut(p)))
	}
	return edges
}

// findAnomalies applies the signature set of §III-D2 to the provenance
// graph.
func findAnomalies(g *provenance.Graph, in Input) []Finding {
	var out []Finding
	fanIn := in.IncastFanIn
	if fanIn <= 0 {
		fanIn = 3
	}

	// Flow contention / incast: ∃p with e(f_i,p) ∧ e(cf,p), f_i ≠ cf.
	for _, p := range g.Ports() {
		var cfs, others []fabric.FlowKey
		for _, f := range g.FlowsAt(p) {
			if !g.HasFlowPortEdge(f, p) {
				continue
			}
			if g.IsCF(f) {
				cfs = append(cfs, f)
			} else {
				others = append(others, f)
			}
		}
		if len(cfs) == 0 || len(others) == 0 {
			continue
		}
		f := Finding{Type: FlowContention, Port: p, Culprits: others, Affected: cfs}
		// Incast refinement: several culprits converging on one target.
		if len(others) >= fanIn {
			dst := others[0].Dst
			same := true
			for _, o := range others[1:] {
				if o.Dst != dst {
					same = false
					break
				}
			}
			if same {
				f.Type = Incast
			}
		}
		out = append(out, f)
	}

	// PFC backpressure / storm: ∃p: e(cf,p) ∧ ∃p_j: e(p,p_j); follow the
	// spreading path to the root. A collective flow "waits at" p when it
	// queued there, or when p is its own source NIC held by a pause (a
	// storm on a host uplink leaves no switch telemetry at p).
	cfSources := map[topo.NodeID]bool{}
	for _, cf := range g.CFs() {
		cfSources[cf.Src] = true
	}
	seenRoot := map[topo.PortID]bool{}
	for _, p := range g.PFCUpstreams() {
		hasCF := cfSources[p.Node]
		if !hasCF {
			for _, f := range g.FlowsAt(p) {
				if g.IsCF(f) && g.HasFlowPortEdge(f, p) {
					hasCF = true
					break
				}
			}
		}
		if !hasCF || len(g.PFCOut(p)) == 0 {
			continue
		}
		chain, root := tracePFC(g, p)
		if seenRoot[root] {
			continue
		}
		seenRoot[root] = true
		f := Finding{
			Type:     PFCBackpressure,
			Port:     p,
			RootPort: root,
			Chain:    chain,
			Injected: g.InjectedCause(root),
		}
		if f.Injected {
			f.Type = PFCStorm
		}
		for _, cf := range g.CFs() {
			if g.HasFlowPortEdge(cf, p) {
				f.Affected = append(f.Affected, cf)
			}
		}
		// Flows feeding the root port are the candidate culprits.
		for _, fl := range g.FlowsAt(root) {
			if !g.IsCF(fl) {
				f.Culprits = append(f.Culprits, fl)
			}
		}
		out = append(out, f)
	}

	// PFC deadlock: a cycle in the port-wait graph.
	if cyc := findPFCCycle(g); len(cyc) > 0 {
		out = append(out, Finding{Type: PFCDeadlock, Port: cyc[0], Chain: cyc})
	}

	// Forwarding loop: TTL drops at a switch.
	loops := map[topo.NodeID]int64{}
	for _, rep := range in.Reports {
		for sw, n := range rep.TTLDrops {
			loops[sw] += n
		}
	}
	var loopSwitches []topo.NodeID
	for sw := range loops {
		loopSwitches = append(loopSwitches, sw)
	}
	sort.Slice(loopSwitches, func(i, j int) bool { return loopSwitches[i] < loopSwitches[j] })
	for _, sw := range loopSwitches {
		out = append(out, Finding{Type: ForwardingLoop, Port: topo.PortID{Node: sw, Port: -1}})
	}
	return out
}

// tracePFC follows e(p, p_j) edges to the end of the spreading path,
// choosing the heaviest-weighted branch at forks. It returns the visited
// chain (excluding p) and the root.
func tracePFC(g *provenance.Graph, p topo.PortID) (chain []topo.PortID, root topo.PortID) {
	cur := p
	visited := map[topo.PortID]bool{cur: true}
	for {
		outs := g.PFCOut(cur)
		var next topo.PortID
		best := -1.0
		found := false
		for _, pj := range outs {
			if visited[pj] {
				continue
			}
			if w := g.WPortPort(cur, pj); w > best {
				best, next, found = w, pj, true
			}
		}
		if !found {
			return chain, cur
		}
		visited[next] = true
		chain = append(chain, next)
		cur = next
	}
}

// findPFCCycle returns one cycle of the e(p_i, p_j) relation, if any.
func findPFCCycle(g *provenance.Graph) []topo.PortID {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[topo.PortID]int{}
	var stack []topo.PortID
	var cycle []topo.PortID
	var dfs func(p topo.PortID) bool
	dfs = func(p topo.PortID) bool {
		color[p] = gray
		stack = append(stack, p)
		for _, q := range g.PFCOut(p) {
			switch color[q] {
			case gray:
				// Extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == q {
						break
					}
				}
				return true
			case white:
				if dfs(q) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[p] = black
		return false
	}
	for _, p := range g.Ports() {
		if color[p] == white && dfs(p) {
			return cycle
		}
	}
	return nil
}

// rate computes Eq. 2 per (contender, cf) on per-step graphs and folds them
// into the Eq. 3 overall score, weighting each critical step by its share
// of the total slowdown.
// groupReports splits reports into per-step groups (per StepOf) and the
// remainder that no step claims.
func groupReports(in Input) (map[waitgraph.StepRef][]*telemetry.Report, []*telemetry.Report) {
	byStep := map[waitgraph.StepRef][]*telemetry.Report{}
	var rest []*telemetry.Report
	for _, rep := range in.Reports {
		if in.StepOf != nil {
			if ref, ok := in.StepOf(rep.TriggeredBy); ok {
				byStep[ref] = append(byStep[ref], rep)
				continue
			}
		}
		rest = append(rest, rep)
	}
	return byStep, rest
}

// rate scores contributors per Eqs. 2 and 3. stepGraphs are the per-step
// provenance graphs built during phase 2; steps without their own
// reports fall back to the merged aggregate graph (it still witnesses
// the anomaly even when another host's monitor collected it).
func (d *Diagnosis) rate(in Input, stepGraphs map[waitgraph.StepRef]*provenance.Graph) {
	expected := in.Expected
	if expected == nil {
		expected = minExecExpectation(in.Records)
	}

	// Slowdown weights over the critical path.
	type stepCtx struct {
		ref   waitgraph.StepRef
		cf    fabric.FlowKey
		slow  simtime.Duration
		graph *provenance.Graph
	}
	var steps []stepCtx
	var totalSlow simtime.Duration
	for _, ref := range d.CriticalPath {
		rec, ok := d.WaitGraph.Record(ref)
		if !ok {
			continue
		}
		slow := rec.End.Sub(rec.Start) - expected(ref)
		if slow <= 0 {
			continue
		}
		g := stepGraphs[ref]
		if g == nil {
			if len(in.Reports) == 0 {
				continue
			}
			g = d.Graph
		}
		steps = append(steps, stepCtx{
			ref:   ref,
			cf:    rec.Flow,
			slow:  slow,
			graph: g,
		})
		totalSlow += slow
	}
	if totalSlow == 0 {
		return
	}

	scores := map[fabric.FlowKey]float64{}
	for _, sc := range steps {
		w := float64(sc.slow) / float64(totalSlow)
		for _, fa := range sc.graph.Contenders() {
			r := sc.graph.RateFlowCF(fa, sc.cf)
			if r <= in.MinCulpritScore {
				continue
			}
			scores[fa] += r * w
			inner := d.PerCF[fa]
			if inner == nil {
				inner = map[fabric.FlowKey]float64{}
				d.PerCF[fa] = inner
			}
			inner[sc.cf] += r
		}
	}
	for f, s := range scores {
		d.Ratings = append(d.Ratings, FlowRating{Flow: f, Score: s})
	}
	sort.Slice(d.Ratings, func(i, j int) bool {
		if d.Ratings[i].Score > d.Ratings[j].Score {
			return true
		}
		if d.Ratings[i].Score < d.Ratings[j].Score {
			return false
		}
		return d.Ratings[i].Flow.String() < d.Ratings[j].Flow.String()
	})
}

// minExecExpectation builds the default expected-time oracle: the minimum
// execution time observed for each step index across hosts.
func minExecExpectation(records []collective.StepRecord) func(waitgraph.StepRef) simtime.Duration {
	minByStep := map[int]simtime.Duration{}
	for _, rec := range records {
		d := rec.End.Sub(rec.Start)
		if cur, ok := minByStep[rec.Step]; !ok || d < cur {
			minByStep[rec.Step] = d
		}
	}
	return func(ref waitgraph.StepRef) simtime.Duration { return minByStep[ref.Step] }
}

// Culprits returns the union of culprit flows over all findings,
// deterministically ordered.
func (d *Diagnosis) Culprits() []fabric.FlowKey {
	seen := map[fabric.FlowKey]bool{}
	var out []fabric.FlowKey
	for _, f := range d.Findings {
		for _, c := range f.Culprits {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// RootPorts returns the traced PFC root-cause ports.
func (d *Diagnosis) RootPorts() []topo.PortID {
	var out []topo.PortID
	seen := map[topo.PortID]bool{}
	for _, f := range d.Findings {
		if f.Type != PFCBackpressure && f.Type != PFCStorm {
			continue
		}
		if !seen[f.RootPort] {
			seen[f.RootPort] = true
			out = append(out, f.RootPort)
		}
	}
	return out
}

// HasType reports whether any finding has the given type.
func (d *Diagnosis) HasType(t AnomalyType) bool {
	for _, f := range d.Findings {
		if f.Type == t {
			return true
		}
	}
	return false
}

// Summary renders the structured diagnostic result.
func (d *Diagnosis) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path (%d steps):", len(d.CriticalPath))
	for _, ref := range d.CriticalPath {
		fmt.Fprintf(&b, " F%dS%d", ref.Host, ref.Step)
	}
	b.WriteString("\n")
	for _, f := range d.Findings {
		fmt.Fprintf(&b, "%s at %v", f.Type, f.Port)
		if f.Type == PFCBackpressure || f.Type == PFCStorm {
			fmt.Fprintf(&b, " root=%v chain=%v", f.RootPort, f.Chain)
		}
		if len(f.Culprits) > 0 {
			fmt.Fprintf(&b, " culprits=%v", f.Culprits)
		}
		if f.Confidence < 1 {
			fmt.Fprintf(&b, " conf=%.2f", f.Confidence)
		}
		b.WriteString("\n")
	}
	for _, r := range d.Ratings {
		fmt.Fprintf(&b, "rating %v = %.0f", r.Flow, r.Score)
		if r.Confidence < 1 {
			fmt.Fprintf(&b, " conf=%.2f", r.Confidence)
		}
		b.WriteString("\n")
	}
	if d.Confidence < 1 {
		c := d.Coverage
		fmt.Fprintf(&b, "confidence %.2f (ports %d/%d, polls %d lost, steps %d/%d)\n",
			d.Confidence, c.PortsPolled, c.PortsPolled+c.PortsMissed,
			c.PollsLost, c.RecordsSeen, c.RecordsExpected)
	}
	return b.String()
}
