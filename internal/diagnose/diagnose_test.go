package diagnose

import (
	"strings"
	"testing"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/waitgraph"
)

var (
	cf0 = fabric.FlowKey{Src: 0, Dst: 1, SrcPort: 5000, DstPort: 5000, Proto: 17}
	cf1 = fabric.FlowKey{Src: 0, Dst: 1, SrcPort: 5001, DstPort: 5001, Proto: 17}
	bf  = fabric.FlowKey{Src: 8, Dst: 9, SrcPort: 9000, DstPort: 9001, Proto: 17}
	bf2 = fabric.FlowKey{Src: 8, Dst: 9, SrcPort: 9100, DstPort: 9101, Proto: 17}
	bf3 = fabric.FlowKey{Src: 7, Dst: 9, SrcPort: 9200, DstPort: 9201, Proto: 17}
	pA  = topo.PortID{Node: 20, Port: 1}
	pB  = topo.PortID{Node: 21, Port: 2}
)

func usT(us int64) simtime.Time { return simtime.Time(us * int64(time.Microsecond)) }

func records() []collective.StepRecord {
	// Two hosts, two steps; host 0 step 1 is slow (bound by nothing —
	// its own previous step), making it the critical chain.
	return []collective.StepRecord{
		{Host: 0, Step: 0, Flow: cf0, Start: 0, End: usT(10), WaitSrc: topo.None},
		{Host: 1, Step: 0, Flow: fabric.FlowKey{Src: 1, Dst: 0, SrcPort: 5000, DstPort: 5000, Proto: 17},
			Start: 0, End: usT(10), WaitSrc: topo.None},
		{Host: 0, Step: 1, Flow: cf1, Start: usT(10), End: usT(100), WaitSrc: 1},
		{Host: 1, Step: 1, Flow: fabric.FlowKey{Src: 1, Dst: 0, SrcPort: 5001, DstPort: 5001, Proto: 17},
			Start: usT(10), End: usT(20), WaitSrc: 0},
	}
}

func contentionReport(trigger fabric.FlowKey) *telemetry.Report {
	return &telemetry.Report{
		TriggeredBy: trigger,
		Flows: []telemetry.FlowRecord{
			{Switch: pA.Node, Port: pA.Port, Flow: cf1, Pkts: 50, Bytes: 50000,
				Wait: map[fabric.FlowKey]int64{bf: 200}},
			{Switch: pA.Node, Port: pA.Port, Flow: bf, Pkts: 50, Bytes: 50000,
				Wait: map[fabric.FlowKey]int64{cf1: 30}},
		},
		Ports: []telemetry.PortRecord{
			{Switch: pA.Node, Port: pA.Port, AvgQueuedBytes: 40000},
		},
	}
}

func cfSet() map[fabric.FlowKey]bool {
	return map[fabric.FlowKey]bool{cf0: true, cf1: true}
}

func stepOf(f fabric.FlowKey) (waitgraph.StepRef, bool) {
	switch f {
	case cf0:
		return waitgraph.StepRef{Host: 0, Step: 0}, true
	case cf1:
		return waitgraph.StepRef{Host: 0, Step: 1}, true
	}
	return waitgraph.StepRef{}, false
}

func TestContentionSignature(t *testing.T) {
	d := Analyze(Input{
		Records: records(),
		Reports: []*telemetry.Report{contentionReport(cf1)},
		CFs:     cfSet(),
		StepOf:  stepOf,
	})
	if !d.HasType(FlowContention) {
		t.Fatalf("contention not found: %+v", d.Findings)
	}
	cs := d.Culprits()
	if len(cs) != 1 || cs[0] != bf {
		t.Fatalf("culprits = %v, want [bf]", cs)
	}
	var finding Finding
	for _, f := range d.Findings {
		if f.Type == FlowContention {
			finding = f
		}
	}
	if finding.Port != pA {
		t.Fatalf("contention port = %v, want %v", finding.Port, pA)
	}
	if len(finding.Affected) != 1 || finding.Affected[0] != cf1 {
		t.Fatalf("affected = %v", finding.Affected)
	}
}

func TestRatingsWeightedBySlowdown(t *testing.T) {
	d := Analyze(Input{
		Records: records(),
		Reports: []*telemetry.Report{contentionReport(cf1)},
		CFs:     cfSet(),
		StepOf:  stepOf,
	})
	if len(d.Ratings) == 0 {
		t.Fatalf("no ratings computed")
	}
	if d.Ratings[0].Flow != bf {
		t.Fatalf("top contributor = %v, want bf", d.Ratings[0].Flow)
	}
	if d.Ratings[0].Score <= 0 {
		t.Fatalf("score = %v", d.Ratings[0].Score)
	}
	if d.PerCF[bf][cf1] <= 0 {
		t.Fatalf("per-CF score missing: %+v", d.PerCF)
	}
}

func TestIncastClassification(t *testing.T) {
	rep := &telemetry.Report{
		TriggeredBy: cf1,
		Flows: []telemetry.FlowRecord{
			{Switch: pA.Node, Port: pA.Port, Flow: cf1, Pkts: 10, Bytes: 10000,
				Wait: map[fabric.FlowKey]int64{bf: 5, bf2: 5, bf3: 5}},
			{Switch: pA.Node, Port: pA.Port, Flow: bf, Pkts: 10, Bytes: 10000,
				Wait: map[fabric.FlowKey]int64{cf1: 2}},
			{Switch: pA.Node, Port: pA.Port, Flow: bf2, Pkts: 10, Bytes: 10000,
				Wait: map[fabric.FlowKey]int64{cf1: 2}},
			{Switch: pA.Node, Port: pA.Port, Flow: bf3, Pkts: 10, Bytes: 10000,
				Wait: map[fabric.FlowKey]int64{cf1: 2}},
		},
		Ports: []telemetry.PortRecord{{Switch: pA.Node, Port: pA.Port, AvgQueuedBytes: 40000}},
	}
	d := Analyze(Input{Records: records(), Reports: []*telemetry.Report{rep}, CFs: cfSet(), StepOf: stepOf})
	if !d.HasType(Incast) {
		t.Fatalf("incast not classified: %+v", d.Findings)
	}
	if got := len(d.Culprits()); got != 3 {
		t.Fatalf("culprits = %d, want 3", got)
	}
}

func pfcReport(injected bool) *telemetry.Report {
	// cf1 waits at pA; pA was paused by downstream congested egress pB,
	// fed entirely by bf.
	return &telemetry.Report{
		TriggeredBy: cf1,
		Flows: []telemetry.FlowRecord{
			{Switch: pA.Node, Port: pA.Port, Flow: cf1, Pkts: 20, Bytes: 20000,
				Wait: map[fabric.FlowKey]int64{bf: 10}},
			{Switch: pB.Node, Port: pB.Port, Flow: bf, Pkts: 30, Bytes: 30000},
		},
		Ports: []telemetry.PortRecord{
			{Switch: pA.Node, Port: pA.Port, AvgQueuedBytes: 20000, Paused: true},
			{Switch: pB.Node, Port: pB.Port, AvgQueuedBytes: 50000,
				MeterIn: map[topo.PortID]int64{pA: 30000},
				PFCEvents: []fabric.PFCEvent{
					{Pause: true, Upstream: pA, Downstream: pB.Node, CauseEgress: pB.Port, Injected: injected},
				}},
		},
	}
}

func TestPFCBackpressureTrace(t *testing.T) {
	d := Analyze(Input{Records: records(), Reports: []*telemetry.Report{pfcReport(false)}, CFs: cfSet(), StepOf: stepOf})
	if !d.HasType(PFCBackpressure) {
		t.Fatalf("backpressure not found: %+v", d.Findings)
	}
	roots := d.RootPorts()
	if len(roots) != 1 || roots[0] != pB {
		t.Fatalf("roots = %v, want [pB]", roots)
	}
	var f Finding
	for _, x := range d.Findings {
		if x.Type == PFCBackpressure {
			f = x
		}
	}
	if len(f.Chain) != 1 || f.Chain[0] != pB {
		t.Fatalf("chain = %v", f.Chain)
	}
	if len(f.Culprits) != 1 || f.Culprits[0] != bf {
		t.Fatalf("culprits at root = %v", f.Culprits)
	}
}

func TestPFCStormClassification(t *testing.T) {
	d := Analyze(Input{Records: records(), Reports: []*telemetry.Report{pfcReport(true)}, CFs: cfSet(), StepOf: stepOf})
	if !d.HasType(PFCStorm) {
		t.Fatalf("storm not classified: %+v", d.Findings)
	}
	if d.HasType(PFCBackpressure) {
		t.Fatalf("storm double-reported as backpressure")
	}
}

func TestDeadlockCycle(t *testing.T) {
	rep := &telemetry.Report{
		Flows: []telemetry.FlowRecord{
			{Switch: pA.Node, Port: pA.Port, Flow: cf1, Pkts: 1, Bytes: 1000,
				Wait: map[fabric.FlowKey]int64{bf: 1}},
		},
		Ports: []telemetry.PortRecord{
			{Switch: pA.Node, Port: pA.Port, Paused: true, AvgQueuedBytes: 1000,
				MeterIn:   map[topo.PortID]int64{pB: 1000},
				PFCEvents: []fabric.PFCEvent{{Pause: true, Upstream: pB, Downstream: pA.Node, CauseEgress: pA.Port}}},
			{Switch: pB.Node, Port: pB.Port, Paused: true, AvgQueuedBytes: 1000,
				MeterIn:   map[topo.PortID]int64{pA: 1000},
				PFCEvents: []fabric.PFCEvent{{Pause: true, Upstream: pA, Downstream: pB.Node, CauseEgress: pB.Port}}},
		},
	}
	d := Analyze(Input{Records: records(), Reports: []*telemetry.Report{rep}, CFs: cfSet(), StepOf: stepOf})
	if !d.HasType(PFCDeadlock) {
		t.Fatalf("deadlock not found: %+v", d.Findings)
	}
}

func TestLoopSignature(t *testing.T) {
	rep := contentionReport(cf1)
	rep.TTLDrops = map[topo.NodeID]int64{33: 5}
	d := Analyze(Input{Records: records(), Reports: []*telemetry.Report{rep}, CFs: cfSet(), StepOf: stepOf})
	if !d.HasType(ForwardingLoop) {
		t.Fatalf("loop not found")
	}
	for _, f := range d.Findings {
		if f.Type == ForwardingLoop && f.Port.Node != 33 {
			t.Fatalf("loop switch = %v, want 33", f.Port.Node)
		}
	}
}

func TestSummaryRendering(t *testing.T) {
	d := Analyze(Input{
		Records: records(),
		Reports: []*telemetry.Report{contentionReport(cf1)},
		CFs:     cfSet(),
		StepOf:  stepOf,
	})
	s := d.Summary()
	if !strings.Contains(s, "critical path") || !strings.Contains(s, "flow-contention") {
		t.Fatalf("summary missing sections:\n%s", s)
	}
	if !strings.Contains(s, "rating") {
		t.Fatalf("summary missing ratings:\n%s", s)
	}
}

func TestNoAnomalyCleanDiagnosis(t *testing.T) {
	d := Analyze(Input{Records: records(), CFs: cfSet(), StepOf: stepOf})
	if len(d.Findings) != 0 {
		t.Fatalf("clean input produced findings: %+v", d.Findings)
	}
	if len(d.Ratings) != 0 {
		t.Fatalf("clean input produced ratings")
	}
	if len(d.CriticalPath) == 0 {
		t.Fatalf("critical path always exists")
	}
}

func TestMinCulpritScoreFilter(t *testing.T) {
	d := Analyze(Input{
		Records:         records(),
		Reports:         []*telemetry.Report{contentionReport(cf1)},
		CFs:             cfSet(),
		StepOf:          stepOf,
		MinCulpritScore: 1e12, // absurd bar: everything suppressed
	})
	if len(d.Ratings) != 0 {
		t.Fatalf("filter did not suppress ratings: %+v", d.Ratings)
	}
}

func TestTracePFCPicksHeaviestBranch(t *testing.T) {
	// pA was paused by two different downstream cause ports; the trace
	// must follow the one carrying more of pA's traffic.
	pHeavy := topo.PortID{Node: 40, Port: 1}
	pLight := topo.PortID{Node: 41, Port: 1}
	rep := &telemetry.Report{
		TriggeredBy: cf1,
		Flows: []telemetry.FlowRecord{
			{Switch: pA.Node, Port: pA.Port, Flow: cf1, Pkts: 10, Bytes: 10000,
				Wait: map[fabric.FlowKey]int64{bf: 4}},
		},
		Ports: []telemetry.PortRecord{
			{Switch: pA.Node, Port: pA.Port, AvgQueuedBytes: 10000, Paused: true},
			{Switch: pHeavy.Node, Port: pHeavy.Port, AvgQueuedBytes: 9000,
				MeterIn: map[topo.PortID]int64{pA: 9000, {Node: 50, Port: 0}: 1000},
				PFCEvents: []fabric.PFCEvent{
					{Pause: true, Upstream: pA, Downstream: pHeavy.Node, CauseEgress: pHeavy.Port},
				}},
			{Switch: pLight.Node, Port: pLight.Port, AvgQueuedBytes: 1000,
				MeterIn: map[topo.PortID]int64{pA: 100, {Node: 51, Port: 0}: 9900},
				PFCEvents: []fabric.PFCEvent{
					{Pause: true, Upstream: pA, Downstream: pLight.Node, CauseEgress: pLight.Port},
				}},
		},
	}
	d := Analyze(Input{Records: records(), Reports: []*telemetry.Report{rep}, CFs: cfSet(), StepOf: stepOf})
	roots := d.RootPorts()
	if len(roots) == 0 {
		t.Fatal("no PFC root traced")
	}
	if roots[0] != pHeavy {
		t.Fatalf("trace followed %v, want the heavy branch %v", roots[0], pHeavy)
	}
}

func TestEq3WeightsAcrossTwoCriticalSteps(t *testing.T) {
	// Two critical steps with slowdowns 30µs and 10µs (expected = min
	// exec per step index). Per-step graphs give bf a per-step rating of
	// 100 in each, so R(bf) = 100×(30/40) + 100×(10/40) = 100.
	recs := []collective.StepRecord{
		// Step 0: host 0 slow (40µs vs host 1's 10µs baseline).
		{Host: 0, Step: 0, Flow: cf0, Start: 0, End: usT(40), WaitSrc: topo.None},
		{Host: 1, Step: 0, Flow: fabric.FlowKey{Src: 1, Dst: 0, SrcPort: 5000, DstPort: 5000, Proto: 17},
			Start: 0, End: usT(10), WaitSrc: topo.None},
		// Step 1: host 0 slow again (20µs vs 10µs).
		{Host: 0, Step: 1, Flow: cf1, Start: usT(40), End: usT(60), WaitSrc: 1, WaitStep: 0},
		{Host: 1, Step: 1, Flow: fabric.FlowKey{Src: 1, Dst: 0, SrcPort: 5001, DstPort: 5001, Proto: 17},
			Start: usT(10), End: usT(20), WaitSrc: 0, WaitStep: 0},
	}
	mkRep := func(trigger, cfFlow fabric.FlowKey) *telemetry.Report {
		return &telemetry.Report{
			TriggeredBy: trigger,
			Flows: []telemetry.FlowRecord{
				{Switch: pA.Node, Port: pA.Port, Flow: cfFlow, Pkts: 10, Bytes: 50000,
					Wait: map[fabric.FlowKey]int64{bf: 100}},
				{Switch: pA.Node, Port: pA.Port, Flow: bf, Pkts: 10, Bytes: 50000,
					Wait: map[fabric.FlowKey]int64{cfFlow: 100}},
			},
			Ports: []telemetry.PortRecord{{Switch: pA.Node, Port: pA.Port, AvgQueuedBytes: 40000}},
		}
	}
	stepOf2 := func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
		switch f {
		case cf0:
			return waitgraph.StepRef{Host: 0, Step: 0}, true
		case cf1:
			return waitgraph.StepRef{Host: 0, Step: 1}, true
		}
		return waitgraph.StepRef{}, false
	}
	d := Analyze(Input{
		Records: recs,
		Reports: []*telemetry.Report{mkRep(cf0, cf0), mkRep(cf1, cf1)},
		CFs:     cfSet(),
		StepOf:  stepOf2,
	})
	if len(d.CriticalPath) != 2 {
		t.Fatalf("critical path = %v", d.CriticalPath)
	}
	if len(d.Ratings) != 1 || d.Ratings[0].Flow != bf {
		t.Fatalf("ratings = %+v", d.Ratings)
	}
	// Each step's R(bf, cf) = 100 (direct contention substitution), and
	// the slowdown weights sum to 1 → overall exactly 100.
	if got := d.Ratings[0].Score; got < 99.99 || got > 100.01 {
		t.Fatalf("Eq 3 score = %v, want 100", got)
	}
}

func TestRootPortsDeduped(t *testing.T) {
	// Two CF ports paused by the same cause must report one root.
	pB2 := topo.PortID{Node: 22, Port: 0}
	rep := pfcReport(false)
	rep.Flows = append(rep.Flows, telemetry.FlowRecord{
		Switch: pB2.Node, Port: pB2.Port, Flow: cf0, Pkts: 5, Bytes: 5000,
		Wait: map[fabric.FlowKey]int64{bf: 2},
	})
	rep.Ports = append(rep.Ports, telemetry.PortRecord{
		Switch: pB2.Node, Port: pB2.Port, AvgQueuedBytes: 5000, Paused: true,
		PFCEvents: []fabric.PFCEvent{
			{Pause: true, Upstream: pB2, Downstream: pB.Node, CauseEgress: pB.Port},
		},
	})
	// Attach the second pause edge to pB's record too.
	for i := range rep.Ports {
		if rep.Ports[i].Switch == pB.Node && rep.Ports[i].Port == pB.Port {
			rep.Ports[i].PFCEvents = append(rep.Ports[i].PFCEvents, fabric.PFCEvent{
				Pause: true, Upstream: pB2, Downstream: pB.Node, CauseEgress: pB.Port,
			})
		}
	}
	d := Analyze(Input{Records: records(), Reports: []*telemetry.Report{rep}, CFs: cfSet(), StepOf: stepOf})
	if got := d.RootPorts(); len(got) != 1 || got[0] != pB {
		t.Fatalf("roots = %v, want [pB] only", got)
	}
}
