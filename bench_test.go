// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md §4 for the experiment index). Custom metrics carry the
// figures' quantities: precision/recall as ratios, telemetry volume in
// bytes/case. Run with:
//
//	go test -bench=. -benchmem
//
// The benches use the reduced 1/360 workload scale so a full pass stays in
// CI budgets; cmd/vedrbench regenerates the figures at 1/90 or full census.
package vedrfolnir_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/experiments"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/hostmon"
	"vedrfolnir/internal/perf"
	"vedrfolnir/internal/provenance"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/scenario"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/sweep"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/waitgraph"
)

// benchConfig is the reduced-scale experiment configuration — the shared
// perf.BenchConfig, so bench rows and vedrperf rows stay comparable.
func benchConfig() scenario.Config {
	return perf.BenchConfig()
}

// benchCase and benchRun adapt the error-returning scenario API for
// benchmarks whose fixtures are known-valid.
func benchCase(tb testing.TB, kind scenario.AnomalyKind, seed int64, cfg scenario.Config) scenario.Case {
	tb.Helper()
	cs, err := scenario.GenerateCase(kind, seed, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return cs
}

func benchRun(tb testing.TB, cs scenario.Case, sys scenario.SystemKind, cfg scenario.Config, opts scenario.RunOptions) scenario.Result {
	tb.Helper()
	res, err := scenario.Run(cs, sys, cfg, opts)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

// benchSystem runs the Fig 9/10 cell for one system: every scenario kind,
// one seed per iteration, reporting precision and telemetry volume.
func benchSystem(b *testing.B, sys scenario.SystemKind) {
	cfg := benchConfig()
	opts := scenario.DefaultRunOptions(cfg)
	opts.Monitor.MaxDetectPerStep = 5 // Fig 9 "optimal parameters"
	var m scenario.Metrics
	var telem int64
	cases := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range experiments.Kinds {
			cs := benchCase(b, kind, int64(i%8), cfg)
			res := benchRun(b, cs, sys, cfg, opts)
			m.Add(res.Outcome)
			telem += res.Overhead.TelemetryBytes
			cases++
		}
	}
	b.ReportMetric(m.Precision(), "precision")
	b.ReportMetric(m.Recall(), "recall")
	b.ReportMetric(float64(telem)/float64(cases), "telemetryB/case")
}

// Fig 9 + Fig 10: one bench per compared system.

func BenchmarkFig9Vedrfolnir(b *testing.B)  { benchSystem(b, scenario.Vedrfolnir) }
func BenchmarkFig9HawkeyeMaxR(b *testing.B) { benchSystem(b, scenario.HawkeyeMaxR) }
func BenchmarkFig9HawkeyeMinR(b *testing.B) { benchSystem(b, scenario.HawkeyeMinR) }
func BenchmarkFig9FullPolling(b *testing.B) { benchSystem(b, scenario.FullPolling) }

// Fig 10 overhead focus: the same runs but reported per anomaly kind for
// Vedrfolnir (the paper's ~10 KB headline).
func BenchmarkFig10OverheadVedrfolnir(b *testing.B) {
	cfg := benchConfig()
	opts := scenario.DefaultRunOptions(cfg)
	var telem, bw int64
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := benchCase(b, scenario.Contention, int64(i%8), cfg)
		res := benchRun(b, cs, scenario.Vedrfolnir, cfg, opts)
		telem += res.Overhead.TelemetryBytes
		bw += res.Overhead.Bandwidth()
		n++
	}
	b.ReportMetric(float64(telem)/float64(n), "telemetryB/case")
	b.ReportMetric(float64(bw)/float64(n), "bandwidthB/case")
}

// Fig 11: host monitor CPU/memory overhead (testbed substitute). The
// -benchmem allocation figures are the memory panel; ns/op is the CPU panel.
func BenchmarkFig11WithMonitor(b *testing.B) {
	cfg := hostmon.DefaultConfig()
	cfg.Bytes = 8 << 20
	cfg.WithMonitor = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := hostmon.MeasureAllGather(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11WithoutMonitor(b *testing.B) {
	cfg := hostmon.DefaultConfig()
	cfg.Bytes = 8 << 20
	cfg.WithMonitor = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := hostmon.MeasureAllGather(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig 12: the RTT-threshold × detection-count sweep on the most sensitive
// scenario (PFC backpressure).
func BenchmarkFig12ParamSweep(b *testing.B) {
	cfg := benchConfig()
	var m scenario.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, factor := range []float64{1.2, 1.8, 2.4} {
			for _, count := range []int{1, 3, 5} {
				opts := scenario.DefaultRunOptions(cfg)
				opts.Monitor.RTTFactor = factor
				opts.Monitor.MaxDetectPerStep = count
				cs := benchCase(b, scenario.PFCBackpressure, int64(i%8), cfg)
				res := benchRun(b, cs, scenario.Vedrfolnir, cfg, opts)
				m.Add(res.Outcome)
			}
		}
	}
	b.ReportMetric(m.Precision(), "precision")
}

// Fig 13a: fixed vs step-grained RTT threshold ablation.
func BenchmarkFig13aFixedThreshold(b *testing.B) {
	cfg := benchConfig()
	opts := scenario.DefaultRunOptions(cfg)
	opts.Monitor.FixedRTTThreshold = 40 * time.Microsecond
	opts.Monitor.MaxDetectPerStep = 3
	var telem int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := benchCase(b, scenario.Contention, int64(i%8), cfg)
		res := benchRun(b, cs, scenario.Vedrfolnir, cfg, opts)
		telem += res.Overhead.TelemetryBytes
	}
	b.ReportMetric(float64(telem)/float64(b.N), "telemetryB/case")
}

// Fig 13b: unrestricted (Hawkeye-like) triggering ablation.
func BenchmarkFig13bUnrestricted(b *testing.B) {
	cfg := benchConfig()
	opts := scenario.DefaultRunOptions(cfg)
	opts.Monitor.Unrestricted = true
	var telem int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := benchCase(b, scenario.Contention, int64(i%8), cfg)
		res := benchRun(b, cs, scenario.Vedrfolnir, cfg, opts)
		telem += res.Overhead.TelemetryBytes
	}
	b.ReportMetric(float64(telem)/float64(b.N), "telemetryB/case")
}

// Fig 14: the full case study (run + both graph renders).
func BenchmarkFig14CaseStudy(b *testing.B) {
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study, err := experiments.Fig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if study.BF2Score <= study.BF1Score {
			b.Fatalf("case study shape broken: BF2 %.0f <= BF1 %.0f",
				study.BF2Score, study.BF1Score)
		}
	}
}

// --- internal/sweep worker scaling (the BENCH_sweep.json trajectory) ---

// sweepBenchRows collects one perf.SweepRow per BenchmarkSweepWorkers*
// run; TestMain writes them to BENCH_sweep.json afterwards, so successive
// PRs can compare sweep throughput at each pool size (cmd/vedrperf reads
// and regenerates the same schema). Keyed by bench name; the framework
// reruns a bench with growing b.N, and the last (largest-N) run wins.
// Benchmarks run sequentially in one goroutine, so plain map writes are
// safe.
var sweepBenchRows = map[string]perf.SweepRow{}

func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 && len(sweepBenchRows) > 0 {
		names := make([]string, 0, len(sweepBenchRows))
		for name := range sweepBenchRows {
			names = append(names, name)
		}
		sort.Strings(names)
		rows := make([]perf.SweepRow, 0, len(names))
		for _, name := range names {
			row := sweepBenchRows[name]
			// A row whose pool could not actually run in parallel measures
			// scheduler churn, not scaling; refuse to record it silently.
			// (benchSweepWorkers raises GOMAXPROCS, so this triggers only
			// when the machine itself has fewer cores than the pool.)
			if perf.Limited(row.Workers, row.GoMaxProcs, runtime.NumCPU()) && !row.EnvironmentLimited {
				fmt.Fprintf(os.Stderr,
					"bench: refusing unannotated environment-limited row %s (workers=%d gomaxprocs=%d numcpu=%d)\n",
					name, row.Workers, row.GoMaxProcs, runtime.NumCPU())
				continue
			}
			rows = append(rows, row)
		}
		if buf, err := json.MarshalIndent(rows, "", "  "); err == nil {
			_ = os.WriteFile("BENCH_sweep.json", append(buf, '\n'), 0o644)
		}
	}
	os.Exit(code)
}

// benchSweepWorkers runs the Fig 9 contention subset (8 seeds, Vedrfolnir,
// optimal parameters) through internal/sweep at a fixed pool size and
// reports merged-sweep throughput.
func benchSweepWorkers(b *testing.B, name string, workers int) {
	// The curve is only meaningful if the pool can actually run in
	// parallel: raise GOMAXPROCS to the pool size for the duration of the
	// bench. Earlier recordings ran workers=4 on a single P (the harness
	// environment pinned GOMAXPROCS=1), which measured scheduler churn and
	// channel overhead, not scaling.
	if prev := runtime.GOMAXPROCS(0); workers > prev {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
	}
	cfg := benchConfig()
	opts := scenario.DefaultRunOptions(cfg)
	opts.Monitor.MaxDetectPerStep = 5 // Fig 9 "optimal parameters"
	exec := sweep.Cases(cfg, opts)
	jobs := make([]sweep.Job, 8)
	for i := range jobs {
		jobs[i] = sweep.Job{Kind: scenario.Contention, Seed: int64(i), System: scenario.Vedrfolnir}
	}
	cases := 0
	b.ReportAllocs()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum, err := sweep.Run(jobs, exec, sweep.Options{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(sum.Failed) > 0 {
			b.Fatalf("failed cases: %v", sum.Failed)
		}
		cases += len(sum.Results)
	}
	b.StopTimer()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	elapsed := b.Elapsed()
	casesPerSec := float64(cases) / elapsed.Seconds()
	b.ReportMetric(casesPerSec, "cases/s")
	sweepBenchRows[name] = perf.SweepRow{
		Bench:              name,
		Workers:            workers,
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		Jobs:               len(jobs),
		Cases:              cases,
		CasesPerSec:        casesPerSec,
		NsPerCase:          elapsed.Nanoseconds() / int64(cases),
		AllocsPerCase:      int64(after.Mallocs-before.Mallocs) / int64(cases),
		BytesPerCase:       int64(after.TotalAlloc-before.TotalAlloc) / int64(cases),
		EnvironmentLimited: perf.Limited(workers, runtime.GOMAXPROCS(0), runtime.NumCPU()),
	}
}

func BenchmarkSweepWorkers1(b *testing.B) { benchSweepWorkers(b, "BenchmarkSweepWorkers1", 1) }
func BenchmarkSweepWorkers4(b *testing.B) { benchSweepWorkers(b, "BenchmarkSweepWorkers4", 4) }

// BenchmarkSweepWorkersMax sizes the pool to the machine, not to the
// (possibly pinned) starting GOMAXPROCS, so BENCH_sweep.json records a
// real N-core datapoint.
func BenchmarkSweepWorkersMax(b *testing.B) {
	benchSweepWorkers(b, "BenchmarkSweepWorkersMax", runtime.NumCPU())
}

// --- Core-library micro-benchmarks (ablation/performance support) ---

// BenchmarkFabricForwarding measures raw simulator throughput: events/sec
// moving one 4 MB flow across the fat-tree.
func BenchmarkFabricForwarding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := hostmon.MeasureAllGather(hostmon.Config{
			Nodes: 4, Bytes: 4 << 20, CellSize: 16 << 10, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(m.Events), "events/op")
	}
}

// BenchmarkWaitGraphBuild measures waiting-graph construction + critical
// path on a 64-rank, 63-step synthetic collective.
func BenchmarkWaitGraphBuild(b *testing.B) {
	var recs []collective.StepRecord
	const ranks, steps = 64, 63
	for h := 0; h < ranks; h++ {
		for s := 0; s < steps; s++ {
			start := simtime.Time(s * 1000)
			recs = append(recs, collective.StepRecord{
				Host:    topo.NodeID(h),
				Step:    s,
				Start:   start,
				End:     start.Add(900),
				WaitSrc: topo.NodeID((h + ranks - 1) % ranks),
			})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := waitgraph.Build(recs)
		if path, _ := g.CriticalPath(); len(path) == 0 {
			b.Fatal("no path")
		}
	}
}

// BenchmarkProvenanceRating measures Eq. 1/2 evaluation over a deep PFC
// chain.
func BenchmarkProvenanceRating(b *testing.B) {
	cf := fabric.FlowKey{Src: 0, Dst: 1, SrcPort: 5000, DstPort: 5000, Proto: 17}
	bf := fabric.FlowKey{Src: 8, Dst: 9, SrcPort: 9000, DstPort: 9001, Proto: 17}
	var reports []*telemetry.Report
	const depth = 32
	for i := 0; i < depth; i++ {
		p := topo.PortID{Node: topo.NodeID(100 + i), Port: 1}
		next := topo.PortID{Node: topo.NodeID(101 + i), Port: 1}
		rep := &telemetry.Report{
			Flows: []telemetry.FlowRecord{
				{Switch: p.Node, Port: p.Port, Flow: cf, Pkts: 10, Bytes: 10000,
					Wait: map[fabric.FlowKey]int64{bf: 5}},
				{Switch: p.Node, Port: p.Port, Flow: bf, Pkts: 10, Bytes: 10000},
			},
			Ports: []telemetry.PortRecord{
				{Switch: p.Node, Port: p.Port, AvgQueuedBytes: 10000,
					MeterIn: map[topo.PortID]int64{next: 10000},
					PFCEvents: []fabric.PFCEvent{
						{Pause: true, Upstream: p, Downstream: next.Node, CauseEgress: next.Port},
					}},
			},
		}
		reports = append(reports, rep)
	}
	cfs := map[fabric.FlowKey]bool{cf: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := provenance.Build(reports, cfs)
		if r := g.RateFlowCF(bf, cf); r < 0 {
			b.Fatal("negative rating")
		}
	}
}

// --- Ablation benches for DESIGN.md's called-out design choices ---

// benchCC measures collective completion time under a congestion controller
// in the contention scenario (CC ablation: DCQCN vs Swift vs none).
func benchCC(b *testing.B, cc rdma.CCKind) {
	cfg := benchConfig()
	cfg.CC = cc
	opts := scenario.DefaultRunOptions(cfg)
	var total time.Duration
	n := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := benchCase(b, scenario.Contention, int64(i%8), cfg)
		res := benchRun(b, cs, scenario.Vedrfolnir, cfg, opts)
		total += time.Duration(res.CollectiveTime)
		n++
	}
	b.ReportMetric(float64(total.Microseconds())/float64(n), "collective_us")
}

func BenchmarkAblationCCDCQCN(b *testing.B) { benchCC(b, rdma.CCDCQCN) }
func BenchmarkAblationCCSwift(b *testing.B) { benchCC(b, rdma.CCSwift) }
func BenchmarkAblationCCNone(b *testing.B)  { benchCC(b, rdma.CCNone) }

// BenchmarkAblationAdaptiveOff measures the adaptive opportunity transfer's
// contribution: same contention cases with the notification mechanism off.
func BenchmarkAblationAdaptiveOff(b *testing.B) {
	cfg := benchConfig()
	opts := scenario.DefaultRunOptions(cfg)
	opts.Monitor.Adaptive = false
	var m scenario.Metrics
	var telem int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := benchCase(b, scenario.Contention, int64(i%8), cfg)
		res := benchRun(b, cs, scenario.Vedrfolnir, cfg, opts)
		m.Add(res.Outcome)
		telem += res.Overhead.TelemetryBytes
	}
	b.ReportMetric(m.Precision(), "precision")
	b.ReportMetric(float64(telem)/float64(b.N), "telemetryB/case")
}

// BenchmarkExtensionScenarios covers the two §II-B extension anomalies.
func BenchmarkExtensionScenarios(b *testing.B) {
	cfg := benchConfig()
	opts := scenario.DefaultRunOptions(cfg)
	var m scenario.Metrics
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, kind := range []scenario.AnomalyKind{scenario.Loop, scenario.LoadImbalance} {
			res := benchRun(b, benchCase(b, kind, int64(i%5), cfg), scenario.Vedrfolnir, cfg, opts)
			m.Add(res.Outcome)
		}
	}
	b.ReportMetric(m.Precision(), "precision")
	b.ReportMetric(m.Recall(), "recall")
}
