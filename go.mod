module vedrfolnir

go 1.22
