// PFC storm diagnosis: a faulty switch port continuously asserts PAUSE
// frames (the hardware-bug anomaly of §II-B), halting a collective flow
// across multiple switches. Vedrfolnir traces the PFC spreading path back to
// the injecting switch.
package main

import (
	"fmt"
	"log"
	"time"

	"vedrfolnir"
)

func main() {
	sess, err := vedrfolnir.NewSession(vedrfolnir.Options{
		Ranks:     8,
		StepBytes: 4 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The K=4 fat-tree's switches: 4 cores, then per pod 2 aggs + 2 edges.
	// Storm the first edge switch's port 0 — the ingress from rank 0 —
	// pausing rank 0's NIC mid-collective.
	switches := sess.Switches()
	stormSwitch := switches[4+0*4+2] // pod 0, first edge switch
	if err := sess.InjectPFCStorm(stormSwitch, 0, 100*time.Microsecond, 800*time.Microsecond); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected PFC storm at switch %d ingress 0\n", stormSwitch)

	rep, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	d := rep.Diagnosis

	fmt.Printf("collective completed in %v despite the storm\n", rep.CollectiveTime)
	for _, f := range d.Findings {
		if f.Type != vedrfolnir.PFCStorm && f.Type != vedrfolnir.PFCBackpressure {
			continue
		}
		fmt.Printf("%v detected: first halted port switch %d port %d\n",
			f.Type, f.Port.Node, f.Port.Port)
		fmt.Printf("  spreading path traced to root: switch %d port %d (injected=%v)\n",
			f.RootPort.Node, f.RootPort.Port, f.Injected)
	}
	if !d.HasType(vedrfolnir.PFCStorm) {
		fmt.Println("no storm diagnosed — try a longer storm window")
	}
}
