// Halving-and-Doubling AllReduce under incast: the flow destinations change
// every step (Fig 1b of the paper), which is exactly where fixed-RTT
// detectors like Hawkeye mis-trigger — Vedrfolnir recomputes the threshold
// per step from the topology. The example runs an 8-rank HD AllReduce while
// several bystander hosts incast into one participant.
package main

import (
	"fmt"
	"log"

	"vedrfolnir"
)

func main() {
	sess, err := vedrfolnir.NewSession(vedrfolnir.Options{
		Ranks:     8,
		Op:        vedrfolnir.AllReduce,
		Algorithm: vedrfolnir.HalvingDoubling,
		StepBytes: 4 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	hosts := sess.Hosts()

	// Incast: four bystanders target rank 5 simultaneously.
	target := hosts[5]
	var injected []vedrfolnir.FlowKey
	for _, src := range []int{8, 10, 12, 14} {
		injected = append(injected, sess.InjectFlow(hosts[src], target, 3<<20, 0))
	}
	fmt.Printf("incast: %d flows into host %d\n", len(injected), target)

	rep, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	d := rep.Diagnosis

	fmt.Printf("HD AllReduce completed in %v; %d detections\n",
		rep.CollectiveTime, rep.Detections)
	if d.HasType(vedrfolnir.Incast) {
		fmt.Println("incast correctly classified (>=3 culprits converging on one target)")
	}
	detected := map[vedrfolnir.FlowKey]bool{}
	for _, c := range d.Culprits() {
		detected[c] = true
	}
	hit := 0
	for _, f := range injected {
		if detected[f] {
			hit++
		}
	}
	fmt.Printf("culprits identified: %d/%d\n", hit, len(injected))
	for _, r := range d.Ratings {
		fmt.Printf("  rating %v = %.0f\n", r.Flow, r.Score)
	}
}
