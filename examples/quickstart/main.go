// Quickstart: run an 8-rank Ring AllGather on a simulated 100 Gbps fat-tree,
// disturb it with one background flow, and print Vedrfolnir's diagnosis —
// the performance bottleneck, the root cause and the culprit flow.
package main

import (
	"fmt"
	"log"

	"vedrfolnir"
)

func main() {
	sess, err := vedrfolnir.NewSession(vedrfolnir.Options{
		Ranks:     8,
		Op:        vedrfolnir.AllGather,
		Algorithm: vedrfolnir.Ring,
		StepBytes: 4 << 20, // 4 MB per step per flow
	})
	if err != nil {
		log.Fatal(err)
	}

	// Hosts 0..7 run the collective; hosts 8..15 are bystanders. Inject a
	// 24 MB background flow from a bystander into rank 2's edge link.
	hosts := sess.Hosts()
	culprit := sess.InjectFlow(hosts[9], hosts[2], 24<<20, 0)
	fmt.Println("injected background flow:", culprit)

	rep, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("collective completed in %v (simulated)\n", rep.CollectiveTime)
	fmt.Printf("detections: %d, telemetry collected: %d bytes\n",
		rep.Detections, rep.Overhead.TelemetryBytes)

	d := rep.Diagnosis
	fmt.Println("\nbottleneck (critical path):")
	for _, ref := range d.CriticalPath {
		fmt.Printf("  flow of host %d, step %d\n", ref.Host, ref.Step)
	}
	fmt.Println("\nfindings:")
	for _, f := range d.Findings {
		fmt.Printf("  %v at switch %d port %d, culprits %v\n",
			f.Type, f.Port.Node, f.Port.Port, f.Culprits)
	}
	fmt.Println("\ncontributor ratings (who hurts the collective most):")
	for _, r := range d.Ratings {
		fmt.Printf("  %v  score %.0f\n", r.Flow, r.Score)
	}
}
