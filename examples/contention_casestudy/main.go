// Contention case study (the paper's Fig 14 setting): an 8-rank Ring
// collective disturbed by one small (BF1) and one large (BF2) background
// flow. Vedrfolnir's contributor rating assigns the large flow a far higher
// score, telling the operator which flow to act on first. The example also
// writes both diagnosis graphs as Graphviz DOT.
package main

import (
	"fmt"
	"log"
	"os"

	"vedrfolnir"
)

func main() {
	sess, err := vedrfolnir.NewSession(vedrfolnir.Options{
		Ranks:     8,
		StepBytes: 4 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	hosts := sess.Hosts()

	// BF1 ≈ 1 MB (small, brief), BF2 ≈ 5 MB (large, spans several steps).
	// BF2 collides with the cross-pod flow into rank 4 — the collective's
	// critical chain.
	bf1 := sess.InjectFlow(hosts[8], hosts[3], 1<<20, 0)
	bf2 := sess.InjectFlow(hosts[12], hosts[4], 5<<20, 0)

	rep, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	d := rep.Diagnosis

	fmt.Println("== diagnosis ==")
	fmt.Print(d.Summary())

	var s1, s2 float64
	for _, r := range d.Ratings {
		switch r.Flow {
		case bf1:
			s1 = r.Score
		case bf2:
			s2 = r.Score
		}
	}
	fmt.Printf("\nBF1 %v scores %.0f\n", bf1, s1)
	fmt.Printf("BF2 %v scores %.0f\n", bf2, s2)
	if s2 > s1 {
		fmt.Println("=> operators should deal with BF2 first (as in the paper's Fig 14)")
	}

	if err := os.WriteFile("waiting.dot", []byte(vedrfolnir.WaitGraphDOT(d)), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("provenance.dot", []byte(vedrfolnir.ProvenanceDOT(d)), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote waiting.dot and provenance.dot (render with `dot -Tsvg`)")
}
