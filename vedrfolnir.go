// Package vedrfolnir is an accurate and efficient diagnosis system for RDMA
// network performance anomalies (NPAs) in collective communications,
// reproducing the SIGCOMM 2025 paper "Vedrfolnir: RDMA Network Performance
// Anomalies Diagnosis in Collective Communications".
//
// The package offers a high-level Session API: describe a cluster, a
// collective operation and the traffic disturbing it, run the simulation,
// and receive a structured diagnosis — performance bottleneck (waiting-graph
// critical path), root causes (flow contention, incast, PFC backpressure,
// PFC storms, forwarding loops, PFC deadlock) and contributor ratings that
// rank the flows responsible.
//
//	sess, _ := vedrfolnir.NewSession(vedrfolnir.Options{Ranks: 8})
//	sess.InjectFlow(8, 3, 20e6, 0)
//	rep, _ := sess.Run()
//	fmt.Println(rep.Diagnosis.Summary())
//
// The underlying substrates (discrete-event RoCEv2 fabric with PFC/ECN,
// DCQCN-style hosts, Ring and Halving-Doubling collectives, switch
// telemetry, step-aware adaptive monitors, Hawkeye and full-polling
// baselines) live in internal packages; experiment harnesses that
// regenerate every figure of the paper are in cmd/vedrbench.
package vedrfolnir

import (
	"fmt"
	"time"

	"vedrfolnir/internal/collective"
	"vedrfolnir/internal/diagnose"
	"vedrfolnir/internal/fabric"
	"vedrfolnir/internal/monitor"
	"vedrfolnir/internal/rdma"
	"vedrfolnir/internal/sim"
	"vedrfolnir/internal/simtime"
	"vedrfolnir/internal/telemetry"
	"vedrfolnir/internal/topo"
	"vedrfolnir/internal/viz"
	"vedrfolnir/internal/waitgraph"
)

// Re-exported result types, so callers can consume diagnoses without
// importing internals.
type (
	// Diagnosis is the analyzer's structured output.
	Diagnosis = diagnose.Diagnosis
	// Finding is one diagnosed anomaly.
	Finding = diagnose.Finding
	// FlowRating is a contributor score (Eq. 3 of the paper).
	FlowRating = diagnose.FlowRating
	// FlowKey is a 5-tuple flow identity.
	FlowKey = fabric.FlowKey
	// NodeID identifies a host or switch.
	NodeID = topo.NodeID
	// AnomalyType classifies findings.
	AnomalyType = diagnose.AnomalyType
	// StepRef names one collective step (host, step index).
	StepRef = waitgraph.StepRef
	// Overhead is the telemetry cost accounting.
	Overhead = telemetry.Overhead
)

// Anomaly types a diagnosis can report.
const (
	FlowContention  = diagnose.FlowContention
	Incast          = diagnose.Incast
	PFCBackpressure = diagnose.PFCBackpressure
	PFCStorm        = diagnose.PFCStorm
	ForwardingLoop  = diagnose.ForwardingLoop
	PFCDeadlock     = diagnose.PFCDeadlock
)

// Op selects the collective operation.
type Op = collective.Op

// Collective operations.
const (
	AllGather     = collective.AllGather
	ReduceScatter = collective.ReduceScatter
	AllReduce     = collective.AllReduce
)

// Algorithm selects the collective schedule.
type Algorithm = collective.Algorithm

// Collective algorithms.
const (
	Ring            = collective.Ring
	HalvingDoubling = collective.HalvingDoubling
)

// Options configures a Session. The zero value is completed with the
// paper's defaults (K=4 fat-tree at 100 Gbps/2 µs, 8-rank Ring AllGather,
// 4 MB steps, step-aware adaptive monitoring at 120% RTT / 3 detections).
type Options struct {
	FatTreeK  int
	Bandwidth simtime.Rate
	LinkDelay time.Duration

	Ranks     int
	Op        Op
	Algorithm Algorithm
	StepBytes int64

	CellSize int
	Seed     int64

	Monitor monitor.Config
	Fabric  fabric.Config

	// Deadline bounds simulated time (a stuck run returns an error).
	Deadline time.Duration
}

func (o *Options) fill() {
	if o.FatTreeK == 0 {
		o.FatTreeK = 4
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = 100 * simtime.Gbps
	}
	if o.LinkDelay == 0 {
		o.LinkDelay = 2 * time.Microsecond
	}
	if o.Ranks == 0 {
		o.Ranks = 8
	}
	if o.StepBytes == 0 {
		o.StepBytes = 4 << 20
	}
	if o.CellSize == 0 {
		o.CellSize = 64 << 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Monitor.RTTFactor == 0 {
		o.Monitor = monitor.DefaultConfig()
	}
	o.Monitor.CellSize = o.CellSize
	if o.Fabric.PFCPauseThreshold == 0 {
		o.Fabric = fabric.DefaultConfig()
	}
	if o.Deadline == 0 {
		o.Deadline = 10 * time.Second
	}
}

// Session is one prepared diagnosis run: a cluster, a collective, the
// monitoring system and any injected disturbances.
type Session struct {
	opts Options

	kernel *sim.Kernel
	ft     *topo.FatTree
	net    *fabric.Network
	hosts  map[topo.NodeID]*rdma.Host
	runner *collective.Runner
	system *monitor.System
	cfs    map[fabric.FlowKey]bool

	injected int
	injErr   error
	ran      bool
}

// NewSession builds the cluster and decomposes the collective.
func NewSession(opts Options) (*Session, error) {
	opts.fill()
	ft, err := topo.NewFatTree(topo.FatTreeConfig{
		K:         opts.FatTreeK,
		Bandwidth: opts.Bandwidth,
		Delay:     opts.LinkDelay,
	})
	if err != nil {
		return nil, err
	}
	if opts.Ranks < 2 || opts.Ranks > len(ft.Hosts()) {
		return nil, fmt.Errorf("vedrfolnir: ranks %d outside [2, %d]", opts.Ranks, len(ft.Hosts()))
	}
	k := sim.New(opts.Seed)
	k.SetEventLimit(2_000_000_000)
	net := fabric.NewNetwork(k, ft.Topology, opts.Fabric)

	rcfg := rdma.DefaultConfig()
	rcfg.CellSize = opts.CellSize
	hosts := make(map[topo.NodeID]*rdma.Host)
	for _, id := range ft.Hosts() {
		h, err := rdma.NewHost(k, net, id, rcfg)
		if err != nil {
			return nil, err
		}
		hosts[id] = h
	}

	ranks := ft.Hosts()[:opts.Ranks]
	schedules, err := collective.Decompose(collective.Spec{
		Op:    opts.Op,
		Alg:   opts.Algorithm,
		Ranks: ranks,
		Bytes: opts.StepBytes * int64(opts.Ranks),
	})
	if err != nil {
		return nil, err
	}
	runner, err := collective.NewRunner(k, hosts, schedules)
	if err != nil {
		return nil, err
	}
	runner.Bind()

	cfs := make(map[fabric.FlowKey]bool)
	for _, sch := range schedules {
		for s := range sch.Steps {
			cfs[sch.FlowKey(s)] = true
		}
	}
	sys := monitor.NewSystem(k, net, runner, hosts, opts.Monitor)
	return &Session{
		opts:   opts,
		kernel: k,
		ft:     ft,
		net:    net,
		hosts:  hosts,
		runner: runner,
		system: sys,
		cfs:    cfs,
	}, nil
}

// Hosts returns the cluster's host IDs; the first Options.Ranks of them are
// the collective's participants.
func (s *Session) Hosts() []NodeID { return s.ft.Hosts() }

// Switches returns the cluster's switch IDs.
func (s *Session) Switches() []NodeID { return s.ft.Switches() }

// InjectFlow schedules a background flow of size bytes from src to dst
// starting at the given offset, and returns its 5-tuple.
func (s *Session) InjectFlow(src, dst NodeID, bytes int64, at time.Duration) FlowKey {
	s.injected++
	key := fabric.FlowKey{
		Src:     src,
		Dst:     dst,
		SrcPort: uint16(9000 + 10*s.injected),
		DstPort: uint16(9001 + 10*s.injected),
		Proto:   17,
	}
	s.kernel.At(simtime.Time(at), func() {
		if err := s.hosts[src].Send(key, bytes); err != nil && s.injErr == nil {
			s.injErr = err
		}
	})
	return key
}

// InjectPFCStorm makes the given switch ingress port continuously assert
// PAUSE toward its upstream between start and start+duration. The injection
// point must be one of Switches().
func (s *Session) InjectPFCStorm(sw NodeID, port int, start, duration time.Duration) error {
	return s.net.InjectPFCStorm(sw, port, simtime.Time(start), duration)
}

// PinRoute overrides the ECMP next-hop set at a switch toward a destination
// host — the lever for constructing load-imbalance (pin several routes to
// one uplink) and forwarding-loop (point two switches at each other)
// anomalies through the public API.
func (s *Session) PinRoute(at, dst NodeID, ports []int) {
	s.ft.OverrideNextHops(at, dst, ports)
}

// PortToward returns the port index on node `at` whose link leads to the
// neighbour node, or -1 if they are not adjacent. A convenience for
// constructing PinRoute arguments.
func (s *Session) PortToward(at, neighbour NodeID) int {
	for pi, peer := range s.ft.Node(at).Ports {
		if peer.Node == neighbour {
			return pi
		}
	}
	return -1
}

// Report is a completed session's outcome.
type Report struct {
	// Diagnosis is the analyzer's structured result.
	Diagnosis *Diagnosis
	// CollectiveTime is the collective's completion time in simulated
	// time.
	CollectiveTime time.Duration
	// Overhead accounts the telemetry collected for this diagnosis.
	Overhead Overhead
	// Detections is the number of triggered anomaly detections.
	Detections int
}

// Run executes the session to collective completion and analyzes it.
// A session can run only once.
func (s *Session) Run() (*Report, error) {
	if s.ran {
		return nil, fmt.Errorf("vedrfolnir: session already ran")
	}
	s.ran = true
	var doneAt simtime.Time
	s.runner.OnComplete = func(at simtime.Time) {
		doneAt = at
		s.kernel.Stop()
	}
	s.runner.Start()
	s.kernel.Run(simtime.Time(s.opts.Deadline))
	if s.injErr != nil {
		return nil, fmt.Errorf("vedrfolnir: injected flow failed to start: %w", s.injErr)
	}
	if err := s.runner.Err(); err != nil {
		return nil, fmt.Errorf("vedrfolnir: %w", err)
	}
	if done, _ := s.runner.Done(); !done {
		return nil, fmt.Errorf("vedrfolnir: collective did not complete within %v", s.opts.Deadline)
	}
	diag := diagnose.Analyze(diagnose.Input{
		Records: s.runner.Records(),
		Reports: s.system.Reports(),
		CFs:     s.cfs,
		StepOf: func(f fabric.FlowKey) (waitgraph.StepRef, bool) {
			host, step, ok := s.runner.StepOf(f)
			return waitgraph.StepRef{Host: host, Step: step}, ok
		},
	})
	return &Report{
		Diagnosis:      diag,
		CollectiveTime: time.Duration(doneAt),
		Overhead:       s.system.Col.Totals,
		Detections:     s.system.Triggers(),
	}, nil
}

// WaitGraphDOT renders a diagnosis' pruned waiting graph as Graphviz DOT.
func WaitGraphDOT(d *Diagnosis) string {
	d.WaitGraph.Prune()
	return viz.WaitGraphDOT(d.WaitGraph)
}

// ProvenanceDOT renders a diagnosis' network provenance graph as DOT.
func ProvenanceDOT(d *Diagnosis) string {
	return viz.ProvenanceDOT(d.Graph)
}
